package shard

import (
	"bytes"
	"math/rand/v2"
	"strings"
	"testing"

	"disasso/internal/core"
	"disasso/internal/dataset"
)

// genDataset builds a deterministic random dataset and its text encoding.
func genDataset(t *testing.T, seed uint64, n, domain, maxLen int) (*dataset.Dataset, string) {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed^0xABCD))
	var records []dataset.Record
	for i := 0; i < n; i++ {
		terms := make([]dataset.Term, 1+rng.IntN(maxLen))
		for j := range terms {
			terms[j] = dataset.Term(rng.IntN(domain))
		}
		records = append(records, dataset.NewRecord(terms...))
	}
	d := dataset.FromRecords(records)
	var buf bytes.Buffer
	if err := dataset.WriteIDs(&buf, d); err != nil {
		t.Fatal(err)
	}
	return d, buf.String()
}

func inMemoryBinary(t *testing.T, d *dataset.Dataset, opts core.Options) []byte {
	t.Helper()
	a, err := core.Anonymize(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := core.WriteBinary(&buf, a); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStreamMatchesInMemory is the engine's core contract: for equal
// effective options, AnonymizeStream and core.Anonymize publish identical
// bytes — across memory budgets small enough to force spilling and multiple
// shards, and across worker counts.
func TestStreamMatchesInMemory(t *testing.T) {
	d, text := genDataset(t, 42, 600, 50, 8)
	for _, tc := range []struct {
		name   string
		shardS int
		budget int64
	}{
		{"multi-shard-spill", 80, 4 << 10},
		{"one-shard-spill", 0x7FFFFFFF, 4 << 10},
		{"no-spill", 80, 1 << 30},
		{"tiny-shards", 30, 2 << 10},
	} {
		t.Run(tc.name, func(t *testing.T) {
			copts := core.Options{K: 3, M: 2, MaxClusterSize: 12, Seed: 7, MaxShardRecords: tc.shardS}
			want := inMemoryBinary(t, d, copts)
			for _, workers := range []int{1, 4} {
				copts.Parallel = workers
				var got bytes.Buffer
				st, err := Anonymize(strings.NewReader(text), &got,
					Options{Core: copts, MemoryBudget: tc.budget, TempDir: t.TempDir()})
				if err != nil {
					t.Fatal(err)
				}
				if st.Records != d.Len() {
					t.Errorf("workers=%d: stats report %d records, want %d", workers, st.Records, d.Len())
				}
				if !bytes.Equal(got.Bytes(), want) {
					t.Errorf("workers=%d: stream output differs from in-memory path (%d vs %d bytes, %d shards)",
						workers, got.Len(), len(want), st.Shards)
				}
				if tc.budget <= 4<<10 && !st.Spilled {
					t.Errorf("workers=%d: tiny budget did not spill", workers)
				}
				if tc.name == "multi-shard-spill" && st.Shards < 2 {
					t.Errorf("workers=%d: expected multiple shards, got %d", workers, st.Shards)
				}
			}
		})
	}
}

// TestStreamDerivedShardSize exercises the budget-derived cut: the stats
// report the chosen MaxShardRecords, and the in-memory path with that
// explicit cut reproduces the stream's bytes.
func TestStreamDerivedShardSize(t *testing.T) {
	d, text := genDataset(t, 9, 500, 40, 6)
	copts := core.Options{K: 3, M: 2, MaxClusterSize: 10, Seed: 3, Parallel: 2}
	var got bytes.Buffer
	st, err := Anonymize(strings.NewReader(text), &got,
		Options{Core: copts, MemoryBudget: 8 << 10, TempDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if st.ShardRecords <= 0 {
		t.Fatalf("derived shard cut not reported: %+v", st)
	}
	copts.MaxShardRecords = st.ShardRecords
	if want := inMemoryBinary(t, d, copts); !bytes.Equal(got.Bytes(), want) {
		t.Errorf("stream (derived cut %d, %d shards) differs from in-memory path", st.ShardRecords, st.Shards)
	}
}

// TestStreamJSONMatchesInMemory pins the JSON emission path, spilled and
// unspilled.
func TestStreamJSONMatchesInMemory(t *testing.T) {
	d, text := genDataset(t, 4, 300, 30, 6)
	copts := core.Options{K: 3, M: 2, MaxClusterSize: 10, Seed: 5, MaxShardRecords: 60}
	a, err := core.Anonymize(d, copts)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := core.WriteJSON(&want, a); err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int64{2 << 10, 1 << 30} {
		var got bytes.Buffer
		st, err := Anonymize(strings.NewReader(text), &got,
			Options{Core: copts, MemoryBudget: budget, TempDir: t.TempDir(), JSON: true})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Errorf("budget=%d (spilled=%v, shards=%d): JSON output differs from WriteJSON", budget, st.Spilled, st.Shards)
		}
	}
}

// TestStreamEdgeCases covers inputs the planner must not mishandle: empty
// streams, datasets below K, identical records (no usable split term after
// the first), and negative term IDs.
func TestStreamEdgeCases(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"blank-lines", "\n\n\n"},
		{"below-k", "1 2\n3 4\n"},
		{"identical-records", strings.Repeat("1 2 3\n", 50)},
		{"negative-terms", "-5 -1 3\n-5 2 7\n-1 2 3\n-5 -1 2\n3 7 9\n-5 3 9\n"},
		{"single-term-records", strings.Repeat("1\n", 20) + strings.Repeat("2\n", 20)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := dataset.ReadIDs(strings.NewReader(tc.input))
			if err != nil {
				t.Fatal(err)
			}
			copts := core.Options{K: 2, M: 1, MaxClusterSize: 4, Seed: 1, MaxShardRecords: 8}
			want := inMemoryBinary(t, d, copts)
			for _, budget := range []int64{1, 1 << 30} { // always-spill and never-spill
				var got bytes.Buffer
				if _, err := Anonymize(strings.NewReader(tc.input), &got,
					Options{Core: copts, MemoryBudget: budget, TempDir: t.TempDir()}); err != nil {
					t.Fatalf("budget=%d: %v", budget, err)
				}
				if !bytes.Equal(got.Bytes(), want) {
					t.Errorf("budget=%d: stream output differs from in-memory path", budget)
				}
			}
		})
	}
}

// TestStreamSensitiveTerms carries the l-diversity mode through the
// streaming path.
func TestStreamSensitiveTerms(t *testing.T) {
	d, text := genDataset(t, 13, 400, 25, 6)
	copts := core.Options{
		K: 3, M: 2, MaxClusterSize: 10, Seed: 11, MaxShardRecords: 50,
		Sensitive: map[dataset.Term]bool{3: true, 7: false, 12: true},
	}
	want := inMemoryBinary(t, d, copts)
	var got bytes.Buffer
	st, err := Anonymize(strings.NewReader(text), &got,
		Options{Core: copts, MemoryBudget: 2 << 10, TempDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Spilled || st.Shards < 2 {
		t.Fatalf("fixture did not exercise the sharded path: %+v", st)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Error("sensitive-term stream output differs from in-memory path")
	}
}

// TestStreamInvalidOptions propagates option validation.
func TestStreamInvalidOptions(t *testing.T) {
	var got bytes.Buffer
	if _, err := Anonymize(strings.NewReader("1 2\n"), &got, Options{Core: core.Options{K: 1, M: 1}}); err == nil {
		t.Error("K=1 accepted")
	}
	if _, err := Anonymize(strings.NewReader("1 x\n"), &got, Options{Core: core.Options{K: 2, M: 1}}); err == nil {
		t.Error("malformed input accepted")
	}
}

// TestStreamPublishedValid re-verifies a streamed publication end to end.
func TestStreamPublishedValid(t *testing.T) {
	d, text := genDataset(t, 77, 500, 45, 7)
	copts := core.Options{K: 4, M: 2, MaxClusterSize: 14, Seed: 2, MaxShardRecords: 70}
	var got bytes.Buffer
	st, err := Anonymize(strings.NewReader(text), &got,
		Options{Core: copts, MemoryBudget: 4 << 10, TempDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.ReadBinary(bytes.NewReader(got.Bytes()))
	if err != nil {
		t.Fatalf("streamed publication does not parse: %v", err)
	}
	if a.NumRecords() != d.Len() {
		t.Errorf("publication covers %d of %d records (%d shards)", a.NumRecords(), d.Len(), st.Shards)
	}
	if st.Clusters != len(a.Clusters) {
		t.Errorf("stats report %d clusters, publication has %d", st.Clusters, len(a.Clusters))
	}
}
