// Package shard is the sharded streaming anonymization engine: it runs the
// disassociation pipeline over datasets that do not fit in memory, producing
// output byte-identical to the in-memory core.Anonymize path at equal
// options.
//
// The engine works in bounded memory by exploiting the paper's structural
// property (Section 4): HORPART's first splits partition the records by their
// most frequent term, and the resulting subtrees are anonymized without ever
// looking at each other's records. The stream is cut into shards along those
// split boundaries — the identical cut core.Anonymize applies for the same
// Options.MaxShardRecords — so each shard can be loaded, anonymized by the
// unmodified core pipeline, published and discarded independently:
//
//  1. a first counting pass streams the records, accumulating per-term
//     supports (never materializing the dataset) and spilling records to a
//     temp file once the memory budget is reached;
//  2. the spilled records are routed into shard files by recursively
//     applying HORPART's most-frequent-term rule (core.ShardCut) until each
//     shard is at most MaxShardRecords;
//  3. shards run through the core pipeline in parallel (par.DoWorker), each
//     worker holding one shard in memory, staging published clusters to
//     per-shard body files via the chunked writers;
//  4. the publication is assembled by streaming the staged bodies, in shard
//     order, behind the WriteBinary (or WriteJSON) header.
//
// When the input fits the budget outright nothing spills and the engine
// degenerates to core.Anonymize plus a monolithic write.
package shard

import (
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"slices"
	"sync"
	"sync/atomic"

	"disasso/internal/core"
	"disasso/internal/dataset"
	"disasso/internal/par"
)

// DefaultMemoryBudget bounds the engine's working set when Options leaves
// MemoryBudget zero.
const DefaultMemoryBudget = 256 << 20

// pipelineExpansion estimates how many bytes of working state the core
// pipeline builds per byte of resident record data (term indexes, chunk
// projections, refinement aggregates). It sizes shards so that a worker
// processing one shard stays within its slice of the memory budget; the
// bounded-memory test pins the resulting peak-heap envelope.
const pipelineExpansion = 6

// Options configures the streaming engine.
type Options struct {
	// Core carries the anonymization parameters. MaxShardRecords, when set,
	// fixes the shard cut explicitly; when zero the engine derives it from
	// MemoryBudget after the counting pass (and records the choice in
	// Stats.ShardRecords). All other fields mean exactly what they mean for
	// core.Anonymize.
	Core core.Options
	// MemoryBudget is the target working-set bound in bytes; 0 means
	// DefaultMemoryBudget. It is best effort: a shard that cannot be split
	// further (no usable term, or a lopsided split that would strand fewer
	// than K records) is processed whole.
	MemoryBudget int64
	// TempDir hosts the spill files; "" means the system temp directory.
	TempDir string
	// JSON selects the indented JSON publication format instead of the
	// compact binary one.
	JSON bool
}

// Stats reports what a streaming run did.
type Stats struct {
	Records int // records read
	Terms   int // distinct terms (|T|)
	// Shards counts the spill-path processing units; it is 1 whenever the
	// input fit the budget (the in-memory path then runs, which still cuts
	// shards internally per the resolved ShardRecords).
	Shards       int
	Clusters     int   // top-level clusters published
	ShardRecords int   // the shard cut used (derived or explicit)
	Spilled      bool  // whether the input exceeded the budget
	SpillBytes   int64 // bytes staged in temp files (records + bodies)
}

// Anonymize streams records from r (text format, one record of integer term
// IDs per line), anonymizes them and writes the publication to w. The output
// is byte-identical to running core.Anonymize on the same records with the
// same effective options (including the derived MaxShardRecords) and writing
// the result with WriteBinary or WriteJSON.
func Anonymize(r io.Reader, w io.Writer, opts Options) (Stats, error) {
	var st Stats
	copts, err := core.ShardOptions(opts.Core)
	if err != nil {
		return st, err
	}
	budget := opts.MemoryBudget
	if budget <= 0 {
		budget = DefaultMemoryBudget
	}

	e := &engine{opts: opts, copts: copts, budget: budget}
	defer e.cleanup()
	if err := e.countAndSpill(r); err != nil {
		return st, err
	}
	st.Records = e.numRecords
	st.Spilled = e.spill != nil

	// The dense domain and its support counts drop straight out of the
	// counting pass.
	terms := make([]dataset.Term, 0, len(e.supports))
	for t := range e.supports {
		terms = append(terms, t)
	}
	slices.Sort(terms)
	counts := make([]int32, len(terms))
	for i, t := range terms {
		counts[i] = e.supports[t]
	}
	e.supports = nil
	e.dom = dataset.NewDenseDomainFromTerms(terms)
	st.Terms = e.dom.Len()

	e.resolveShardSize()
	copts = e.copts
	st.ShardRecords = copts.MaxShardRecords

	if e.spill == nil {
		// Everything fits: the in-memory path IS the specification.
		d := dataset.FromRecords(e.buffered)
		a, err := core.Anonymize(d, copts)
		if err != nil {
			return st, err
		}
		st.Shards = 1
		st.Clusters = len(a.Clusters)
		if opts.JSON {
			return st, core.WriteJSON(w, a)
		}
		return st, core.WriteBinary(w, a)
	}

	exclude, sensitive := core.SensitiveBits(copts, e.dom)
	if err := e.plan(counts, exclude); err != nil {
		return st, err
	}
	st.Shards = len(e.shards)

	if err := e.processShards(exclude, sensitive); err != nil {
		return st, err
	}
	for i := range e.shards {
		st.Clusters += e.shards[i].clusters
	}
	st.SpillBytes = e.spillBytes.Load()
	return st, e.assemble(w)
}

// engine carries one streaming run.
type engine struct {
	opts   Options
	copts  core.Options
	budget int64

	dir        string // temp dir, created lazily
	tmpSeq     int
	numRecords int
	totalTerms int64

	supports map[dataset.Term]int32
	dom      *dataset.DenseDomain

	// Pass-1 record staging: in memory until the budget forces a spill.
	buffered      []dataset.Record
	bufferedBytes int64
	spill         *spillWriter

	shards         []fileShard
	spillBytes     atomic.Int64
	heldCountBytes int64 // support arrays held across with-recursions (capped)
}

// countingWriter tracks the bytes written through it, feeding
// Stats.SpillBytes with real file sizes.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// fileShard is one planned shard: a spill file of records (dense term ids,
// except for an unsplit root which stays in original terms), its record
// count and the split-path terms its HORPART continuation must ignore.
type fileShard struct {
	path      string
	n         int
	pathTerms []int32
	dense     bool

	bodyPath string // staged published clusters
	clusters int
	err      error
}

// spillWriter wraps a temp file behind the binary record codec.
type spillWriter struct {
	f  *os.File
	cw *countingWriter
	rw *dataset.BinaryRecordWriter
}

func (e *engine) ensureDir() error {
	if e.dir != "" {
		return nil
	}
	dir, err := os.MkdirTemp(e.opts.TempDir, "disasso-shard-")
	if err != nil {
		return fmt.Errorf("shard: temp dir: %w", err)
	}
	e.dir = dir
	return nil
}

func (e *engine) tmpPath(kind string) string {
	e.tmpSeq++
	return filepath.Join(e.dir, fmt.Sprintf("%s-%06d.rec", kind, e.tmpSeq))
}

func (e *engine) cleanup() {
	if e.spill != nil && e.spill.f != nil {
		// Error-path cleanup: the run already failed (or the spill was
		// fully read back); the close result cannot change the outcome.
		_ = e.spill.f.Close()
	}
	if e.dir != "" {
		os.RemoveAll(e.dir)
	}
}

// recordFootprint approximates the resident bytes of one parsed record: the
// backing array plus slice and bookkeeping overhead.
func recordFootprint(terms int) int64 { return 40 + 4*int64(terms) }

// countAndSpill is pass 1: stream the input, accumulate supports, and keep
// records in memory until the budget's staging half is exhausted, spilling
// them (and the rest of the stream) to a temp file beyond that.
func (e *engine) countAndSpill(r io.Reader) error {
	e.supports = make(map[dataset.Term]int32)
	sr := dataset.NewStreamReader(r)
	stageBudget := e.budget / 2
	for {
		rec, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if len(rec) == 0 {
			continue
		}
		e.numRecords++
		e.totalTerms += int64(len(rec))
		for _, t := range rec {
			e.supports[t]++
		}
		if e.spill == nil {
			e.buffered = append(e.buffered, rec)
			e.bufferedBytes += recordFootprint(len(rec))
			if e.bufferedBytes > stageBudget {
				if err := e.startSpill(); err != nil {
					return err
				}
			}
			continue
		}
		if err := e.spill.rw.Write(rec); err != nil {
			return fmt.Errorf("shard: spill: %w", err)
		}
	}
	if e.spill != nil {
		if err := e.spill.rw.Flush(); err != nil {
			return fmt.Errorf("shard: spill flush: %w", err)
		}
		if err := e.spill.f.Close(); err != nil {
			return err
		}
		e.spillBytes.Add(e.spill.cw.n)
	}
	return nil
}

// startSpill drains the in-memory staging buffer to the root spill file and
// switches pass 1 into spill mode.
func (e *engine) startSpill() error {
	if err := e.ensureDir(); err != nil {
		return err
	}
	path := filepath.Join(e.dir, "root.rec")
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("shard: spill: %w", err)
	}
	cw := &countingWriter{w: f}
	e.spill = &spillWriter{f: f, cw: cw, rw: dataset.NewBinaryRecordWriter(cw)}
	for _, rec := range e.buffered {
		if err := e.spill.rw.Write(rec); err != nil {
			return fmt.Errorf("shard: spill: %w", err)
		}
	}
	e.buffered = nil
	e.bufferedBytes = 0
	return nil
}

// resolveShardSize fixes the shard cut: an explicit Core.MaxShardRecords
// wins; otherwise the cut targets one worker's slice of the memory budget,
// assuming pipelineExpansion bytes of working state per resident record
// byte. The choice is written back into copts so the core path sees the
// exact same effective options.
func (e *engine) resolveShardSize() {
	if e.copts.MaxShardRecords > 0 {
		return
	}
	workers := e.copts.Parallel
	if workers < 1 {
		workers = 1
	}
	avgLen := float64(10)
	if e.numRecords > 0 {
		avgLen = float64(e.totalTerms) / float64(e.numRecords)
	}
	perRecord := pipelineExpansion * float64(recordFootprint(int(math.Ceil(avgLen))))
	s := int(float64(e.budget) / perRecord / float64(workers))
	if s < e.copts.MaxClusterSize {
		s = e.copts.MaxClusterSize
	}
	e.copts.MaxShardRecords = s
}

// processShards runs the core pipeline over every planned shard on the
// worker pool, staging each shard's published clusters to a body file.
func (e *engine) processShards(exclude, sensitive []bool) error {
	workers := e.copts.Parallel
	var mu sync.Mutex // guards tmpPath's sequence
	par.DoWorker(workers, len(e.shards), func(_, i int) {
		sh := &e.shards[i]
		records, err := e.loadShard(sh)
		if err != nil {
			sh.err = err
			return
		}
		ignore := make([]bool, e.dom.Len())
		copy(ignore, exclude)
		for _, t := range sh.pathTerms {
			ignore[t] = true
		}
		nodes := core.AnonymizeShard(core.Shard{Records: records, Ignore: ignore, Index: i}, e.dom.Len(), sensitive, e.copts)
		core.RestoreClusters(nodes, e.dom)

		mu.Lock()
		sh.bodyPath = e.tmpPath("body")
		mu.Unlock()
		sh.clusters = len(nodes)
		sh.err = e.stageBody(sh.bodyPath, nodes)
		os.Remove(sh.path)
	})
	for i := range e.shards {
		if e.shards[i].err != nil {
			return e.shards[i].err
		}
	}
	return nil
}

// loadShard materializes one shard file as dense records.
func (e *engine) loadShard(sh *fileShard) ([]dataset.Record, error) {
	f, err := os.Open(sh.path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rr := dataset.NewBinaryRecordReader(f)
	records := make([]dataset.Record, 0, sh.n)
	for {
		rec, err := rr.Next(nil)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("shard: load %s: %w", filepath.Base(sh.path), err)
		}
		records = append(records, rec)
	}
	if len(records) != sh.n {
		return nil, fmt.Errorf("shard: %s holds %d records, planned %d", filepath.Base(sh.path), len(records), sh.n)
	}
	if !sh.dense {
		records = e.dom.RemapAll(records)
	}
	return records, nil
}

// stageBody writes one shard's published clusters to a body file in the
// output format's per-cluster framing. JSON bodies carry a leading ",\n    "
// separator before every cluster; assembly strips the very first comma.
func (e *engine) stageBody(path string, nodes []*core.ClusterNode) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if e.opts.JSON {
		if err := writeJSONBody(f, nodes); err != nil {
			return err
		}
	} else {
		cw := core.NewBinaryClusterWriter(f)
		for _, n := range nodes {
			if err := cw.Append(n); err != nil {
				return err
			}
		}
		if err := cw.Flush(); err != nil {
			return err
		}
	}
	if fi, err := f.Stat(); err == nil {
		e.spillBytes.Add(fi.Size())
	}
	return f.Close()
}

// assemble streams the staged bodies behind the format header, in shard
// order, producing the exact WriteBinary/WriteJSON bytes.
func (e *engine) assemble(w io.Writer) error {
	if e.opts.JSON {
		return e.assembleJSON(w)
	}
	total := 0
	for i := range e.shards {
		total += e.shards[i].clusters
	}
	if err := core.WriteBinaryHeader(w, e.copts.K, e.copts.M, total); err != nil {
		return err
	}
	for i := range e.shards {
		if err := copyFile(w, e.shards[i].bodyPath); err != nil {
			return err
		}
		os.Remove(e.shards[i].bodyPath)
	}
	return nil
}

func copyFile(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = io.Copy(w, f)
	return err
}
