package qindex

import (
	"slices"

	"disasso/internal/core"
	"disasso/internal/dataset"
)

// Merge assembles the index of a full publication from per-segment part
// indexes: parts[i] must index an Anonymized whose Clusters slice is the i-th
// contiguous segment of a.Clusters, in order (the delta-republish engine's
// shards are exactly such segments). Term lists are unioned, postings are
// concatenated with cumulative cluster-id offsets — each part's lists are
// already sorted and each part's offset clusters precede the next part's, so
// every merged list stays sorted — and stats are summed. The result is
// structurally identical to Build(a), at the cost of only the parts' sizes,
// which is what lets a delta republish reindex only its dirty shards.
func Merge(a *core.Anonymized, parts []*Index) *Index {
	total := 0
	for _, p := range parts {
		total += len(p.a.Clusters)
	}
	if total != len(a.Clusters) {
		panic("qindex: Merge parts do not cover the publication")
	}

	all := make([]dataset.Term, 0, total)
	for _, p := range parts {
		all = append(all, p.terms...)
	}
	slices.Sort(all)
	all = slices.Compact(all)
	ix := &Index{a: a, terms: all}
	n := len(all)
	ix.stats = make([]TermStats, n)

	// Per-term posting counts and summed stats. Part and merged term lists
	// are both ascending, so each part needs one forward walk of the merged
	// list, not a search per term.
	counts := make([]int32, n)
	for _, p := range parts {
		g := int32(0)
		for lr, t := range p.terms {
			for all[g] != t {
				g++
			}
			s := p.stats[lr]
			counts[g] += int32(s.Clusters)
			ix.stats[g].SubrecordOcc += s.SubrecordOcc
			ix.stats[g].TermChunkOcc += s.TermChunkOcc
			ix.stats[g].Clusters += s.Clusters
		}
	}

	ix.postOff = make([]int32, n+1)
	run := int32(0)
	for r, c := range counts {
		ix.postOff[r] = run
		run += c
	}
	ix.postOff[n] = run
	ix.post = make([]Posting, run)
	next := slices.Clone(ix.postOff[:n])
	base := int32(0)
	for _, p := range parts {
		g := int32(0)
		for lr, t := range p.terms {
			for all[g] != t {
				g++
			}
			for _, po := range p.Postings(int32(lr)) {
				ix.post[next[g]] = Posting{Cluster: po.Cluster + base, Bits: po.Bits}
				next[g]++
			}
		}
		base += int32(len(p.a.Clusters))
	}
	return ix
}
