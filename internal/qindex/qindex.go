// Package qindex builds an immutable inverted term index over a published
// (disassociated) dataset, the serving-side counterpart of the per-cluster
// dense index internal/core uses while anonymizing. Section 6 of the paper
// has analysts "directly query the anonymization result"; the index makes
// those queries sublinear in the number of clusters: each term maps to the
// posting list of top-level cluster nodes it occurs in, so an itemset query
// only ever visits the clusters in the intersection of its terms' posting
// lists, and per-term aggregates (the Section 6 certain lower bounds) are
// answered without touching the forest at all.
//
// The index is built once in O(published size) — one walk over the forest,
// with every per-term table a flat slice over the dense rank domain (the
// published terms in ascending order, the same device as
// dataset.DenseDomain) — and is immutable afterwards, so any number of
// goroutines may query it concurrently without locking.
package qindex

import (
	"slices"

	"disasso/internal/core"
	"disasso/internal/dataset"
)

// Occurrence-kind bits of one posting: where inside the cluster node the
// term occurs. A term may carry several bits (e.g. hosted by one leaf's
// record chunk and another leaf's term chunk of the same joint cluster).
const (
	// OccRecordChunk: the term is in a record-chunk domain of some leaf.
	OccRecordChunk = 1 << iota
	// OccTermChunk: the term is in some leaf's term chunk.
	OccTermChunk
	// OccSharedChunk: the term is in a shared-chunk domain of some joint.
	OccSharedChunk
)

// Posting is one entry of a term's posting list: a top-level cluster node
// (index into Anonymized.Clusters) plus the occurrence-kind bits the term
// has inside it.
type Posting struct {
	Cluster int32
	Bits    uint8
}

// TermStats aggregates one term's occurrences across the whole publication.
type TermStats struct {
	// SubrecordOcc counts subrecords containing the term across all record
	// and shared chunks — occurrences certain in every reconstruction.
	SubrecordOcc int
	// TermChunkOcc counts the term chunks holding the term; each contributes
	// exactly one certain appearance (presence, not multiplicity).
	TermChunkOcc int
	// Clusters is the term's posting-list length.
	Clusters int
}

// LowerBoundSupport is the Section 6 certain lower bound of the term's
// support: every subrecord occurrence plus one appearance per term chunk.
// It equals Anonymized.LowerBoundSupports()[term].
func (s TermStats) LowerBoundSupport() int { return s.SubrecordOcc + s.TermChunkOcc }

// Index is the immutable inverted index over one published dataset.
type Index struct {
	a     *core.Anonymized
	terms []dataset.Term // rank -> global term, ascending

	post    []Posting // flat posting backing, grouped by rank
	postOff []int32   // rank -> offset into post; len == len(terms)+1

	stats []TermStats // rank -> aggregate occurrence counts

	// retain pins a backing resource (a snapshot-file mapping) whose
	// lifetime must cover the index's: the slabs above may be views into it.
	retain any
}

// Slabs exposes the index's flat backing arrays — the sorted term domain,
// the posting slab, its per-rank prefix-sum offsets and the per-term
// aggregate stats — for serialization (internal/snapfile persists exactly
// these four slabs). Callers must not modify the returned slices.
func (ix *Index) Slabs() (terms []dataset.Term, post []Posting, postOff []int32, stats []TermStats) {
	return ix.terms, ix.post, ix.postOff, ix.stats
}

// FromSlabs assembles an Index directly over pre-built backing arrays — the
// inverse of Slabs, used by internal/snapfile to reconstruct an index as
// zero-copy views over a memory-mapped snapshot file. The slabs must satisfy
// the Build invariants (terms strictly ascending; postOff a monotone prefix
// sum with postOff[len(terms)] == len(post); every posting list sorted by
// cluster id, ids valid for a); snapfile's reader validates them before
// calling. retain, when non-nil, is stored in the index solely to keep a
// backing resource (the file mapping) reachable for as long as the index is.
func FromSlabs(a *core.Anonymized, terms []dataset.Term, post []Posting, postOff []int32, stats []TermStats, retain any) *Index {
	return &Index{a: a, terms: terms, post: post, postOff: postOff, stats: stats, retain: retain}
}

// Build scans the published forest once and returns its inverted index.
func Build(a *core.Anonymized) *Index {
	ix := &Index{a: a, terms: collectDomain(a)}
	n := len(ix.terms)
	ix.stats = make([]TermStats, n)

	// Pass 1 over the forest: per-term posting-list lengths and occurrence
	// stats, using an epoch-stamped bits table so each (term, cluster) pair
	// is counted once however many times the term occurs inside the cluster.
	counts := make([]int32, n)
	bits := make([]uint8, n)
	stamp := make([]int32, n)
	for i := range stamp {
		stamp[i] = -1
	}
	for ci, node := range a.Clusters {
		ix.scanNode(node, int32(ci), counts, bits, stamp, nil)
	}

	// Carve the flat posting slab by prefix sums, then fill in pass 2. The
	// clusters are walked in order, so every posting list ends up sorted by
	// cluster id — the invariant the intersection merge relies on.
	ix.postOff = make([]int32, n+1)
	total := int32(0)
	for r, c := range counts {
		ix.postOff[r] = total
		total += c
	}
	ix.postOff[n] = total
	ix.post = make([]Posting, total)
	next := make([]int32, n)
	copy(next, ix.postOff[:n])
	for i := range stamp {
		stamp[i] = -1
	}
	for ci, node := range a.Clusters {
		ix.scanNode(node, int32(ci), nil, bits, stamp, next)
	}
	for r := range ix.stats {
		ix.stats[r].Clusters = int(counts[r])
	}
	return ix
}

// collectDomain returns the published domain as a sorted term slice — the
// rank space — in one flat pass (the forest-walk analogue of
// core.collectTerms).
func collectDomain(a *core.Anonymized) []dataset.Term {
	var all []dataset.Term
	for _, n := range a.Clusters {
		n.Walk(func(cn *core.ClusterNode) {
			if cn.IsLeaf() {
				for _, c := range cn.Simple.RecordChunks {
					all = append(all, c.Domain...)
				}
				all = append(all, cn.Simple.TermChunk...)
			} else {
				for _, c := range cn.SharedChunks {
					all = append(all, c.Domain...)
				}
			}
		})
	}
	slices.Sort(all)
	return slices.Compact(all)
}

// scanNode walks one top-level cluster node accumulating per-term state. In
// the counting pass (counts non-nil) it sizes posting lists and fills
// TermStats; in the fill pass (next non-nil) it writes the postings. The
// stamp table tracks which ranks have been seen for the current cluster;
// bits accumulates the occurrence kinds while the cluster is being walked
// and is flushed into the posting on first sight in the fill pass — so the
// fill pass ORs bits as it goes, updating the already-written posting.
func (ix *Index) scanNode(node *core.ClusterNode, ci int32, counts []int32, bits []uint8, stamp []int32, next []int32) {
	touch := func(t dataset.Term, kind uint8, subOcc, tcOcc int) {
		r := ix.rankOf(t)
		if stamp[r] != ci {
			stamp[r] = ci
			bits[r] = 0
			if counts != nil {
				counts[r]++
			}
			if next != nil {
				ix.post[next[r]] = Posting{Cluster: ci}
				next[r]++
			}
		}
		bits[r] |= kind
		if next != nil {
			ix.post[next[r]-1].Bits = bits[r]
		}
		if counts != nil {
			ix.stats[r].SubrecordOcc += subOcc
			ix.stats[r].TermChunkOcc += tcOcc
		}
	}
	node.Walk(func(cn *core.ClusterNode) {
		if cn.IsLeaf() {
			for _, c := range cn.Simple.RecordChunks {
				for _, t := range c.Domain {
					touch(t, OccRecordChunk, 0, 0)
				}
				for _, sr := range c.Subrecords {
					for _, t := range sr {
						touch(t, OccRecordChunk, 1, 0)
					}
				}
			}
			for _, t := range cn.Simple.TermChunk {
				touch(t, OccTermChunk, 0, 1)
			}
			return
		}
		for _, c := range cn.SharedChunks {
			for _, t := range c.Domain {
				touch(t, OccSharedChunk, 0, 0)
			}
			for _, sr := range c.Subrecords {
				for _, t := range sr {
					touch(t, OccSharedChunk, 1, 0)
				}
			}
		}
	})
}

// rankOf returns the rank of a term known to be in the domain.
func (ix *Index) rankOf(t dataset.Term) int32 {
	r, ok := slices.BinarySearch(ix.terms, t)
	if !ok {
		panic("qindex: term outside the published domain")
	}
	return int32(r)
}

// MustRank returns the rank of a term that must be in the domain (panics
// otherwise) — for callers walking the indexed publication itself, where a
// missing term means a corrupted index.
func (ix *Index) MustRank(t dataset.Term) int32 { return ix.rankOf(t) }

// Anonymized returns the published dataset the index was built over.
func (ix *Index) Anonymized() *core.Anonymized { return ix.a }

// NumTerms returns the published domain size |T|.
func (ix *Index) NumTerms() int { return len(ix.terms) }

// Terms returns the published domain, ascending. The caller must not modify
// the returned slice.
func (ix *Index) Terms() []dataset.Term { return ix.terms }

// Rank returns the dense rank of a term and whether it is in the domain.
func (ix *Index) Rank(t dataset.Term) (int32, bool) {
	r, ok := slices.BinarySearch(ix.terms, t)
	return int32(r), ok
}

// TermOf returns the global term at a rank.
func (ix *Index) TermOf(rank int32) dataset.Term { return ix.terms[rank] }

// Postings returns the term's posting list, sorted by cluster id. The caller
// must not modify the returned slice.
func (ix *Index) Postings(rank int32) []Posting {
	return ix.post[ix.postOff[rank]:ix.postOff[rank+1]]
}

// Stats returns the term's aggregate occurrence counts.
func (ix *Index) Stats(rank int32) TermStats { return ix.stats[rank] }

// IntersectClusters appends to dst the ids of the top-level cluster nodes
// containing every term of the normalized itemset — the only clusters that
// can contribute to the itemset's support — and returns dst. It returns nil
// dst unchanged when some term is outside the published domain. The merge
// starts from the rarest term's posting list, so cost is bounded by the
// shortest list, not the cluster count.
func (ix *Index) IntersectClusters(dst []int32, s dataset.Record) []int32 {
	if len(s) == 0 {
		return dst
	}
	lists := make([][]Posting, len(s))
	for i, t := range s {
		r, ok := ix.Rank(t)
		if !ok {
			return dst
		}
		lists[i] = ix.Postings(r)
	}
	slices.SortFunc(lists, func(a, b []Posting) int { return len(a) - len(b) })
outer:
	for _, p := range lists[0] {
		for _, l := range lists[1:] {
			if !containsCluster(l, p.Cluster) {
				continue outer
			}
		}
		dst = append(dst, p.Cluster)
	}
	return dst
}

// containsCluster reports whether the posting list (sorted by cluster) holds
// the cluster id.
func containsCluster(l []Posting, c int32) bool {
	_, ok := slices.BinarySearchFunc(l, c, func(p Posting, c int32) int {
		return int(p.Cluster - c)
	})
	return ok
}
