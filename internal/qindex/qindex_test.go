package qindex

import (
	"math/rand/v2"
	"slices"
	"testing"

	"disasso/internal/core"
	"disasso/internal/dataset"
)

func randomAnonymized(t *testing.T, seed uint64, n, domain, k, m int) *core.Anonymized {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed^0xABCD))
	var records []dataset.Record
	for i := 0; i < n; i++ {
		terms := make([]dataset.Term, 1+rng.IntN(5))
		for j := range terms {
			terms[j] = dataset.Term(rng.IntN(domain))
		}
		records = append(records, dataset.NewRecord(terms...))
	}
	a, err := core.Anonymize(dataset.FromRecords(records), core.Options{K: k, M: m, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// brute-force occurrence map: term -> cluster id -> bits.
func bruteOccurrences(a *core.Anonymized) map[dataset.Term]map[int32]uint8 {
	occ := make(map[dataset.Term]map[int32]uint8)
	mark := func(t dataset.Term, ci int32, bit uint8) {
		if occ[t] == nil {
			occ[t] = make(map[int32]uint8)
		}
		occ[t][ci] |= bit
	}
	for ci, node := range a.Clusters {
		node.Walk(func(cn *core.ClusterNode) {
			if cn.IsLeaf() {
				for _, c := range cn.Simple.RecordChunks {
					for _, t := range c.Domain {
						mark(t, int32(ci), OccRecordChunk)
					}
				}
				for _, t := range cn.Simple.TermChunk {
					mark(t, int32(ci), OccTermChunk)
				}
			} else {
				for _, c := range cn.SharedChunks {
					for _, t := range c.Domain {
						mark(t, int32(ci), OccSharedChunk)
					}
				}
			}
		})
	}
	return occ
}

func TestIndexDomainAndLowerBounds(t *testing.T) {
	a := randomAnonymized(t, 7, 500, 40, 3, 2)
	ix := Build(a)

	if want := a.Domain(); !slices.Equal(ix.Terms(), want) {
		t.Fatalf("index domain %v != published domain %v", ix.Terms(), want)
	}
	want := a.LowerBoundSupports()
	for r := int32(0); r < int32(ix.NumTerms()); r++ {
		term := ix.TermOf(r)
		if got := ix.Stats(r).LowerBoundSupport(); got != want[term] {
			t.Errorf("term %d: indexed lower-bound support %d, scan %d", term, got, want[term])
		}
	}
	if len(want) != ix.NumTerms() {
		t.Errorf("index has %d terms, LowerBoundSupports has %d", ix.NumTerms(), len(want))
	}
}

func TestIndexPostingsMatchBruteForce(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		a := randomAnonymized(t, seed, 400, 30, 3, 2)
		ix := Build(a)
		occ := bruteOccurrences(a)
		for term, clusters := range occ {
			r, ok := ix.Rank(term)
			if !ok {
				t.Fatalf("seed %d: term %d missing from index", seed, term)
			}
			post := ix.Postings(r)
			if len(post) != len(clusters) {
				t.Fatalf("seed %d term %d: posting list has %d clusters, want %d", seed, term, len(post), len(clusters))
			}
			if ix.Stats(r).Clusters != len(post) {
				t.Errorf("seed %d term %d: Stats.Clusters %d != posting length %d", seed, term, ix.Stats(r).Clusters, len(post))
			}
			last := int32(-1)
			for _, p := range post {
				if p.Cluster <= last {
					t.Fatalf("seed %d term %d: posting list not strictly ascending", seed, term)
				}
				last = p.Cluster
				if want := clusters[p.Cluster]; p.Bits != want {
					t.Errorf("seed %d term %d cluster %d: bits %03b, want %03b", seed, term, p.Cluster, p.Bits, want)
				}
			}
		}
	}
}

func TestIntersectClusters(t *testing.T) {
	a := randomAnonymized(t, 11, 600, 25, 3, 2)
	ix := Build(a)
	occ := bruteOccurrences(a)
	rng := rand.New(rand.NewPCG(5, 6))

	check := func(s dataset.Record) {
		t.Helper()
		got := ix.IntersectClusters(nil, s)
		var want []int32
		for ci := range a.Clusters {
			all := true
			for _, term := range s {
				if _, ok := occ[term][int32(ci)]; !ok {
					all = false
					break
				}
			}
			if all {
				want = append(want, int32(ci))
			}
		}
		if !slices.Equal(got, want) {
			t.Errorf("itemset %v: intersect %v, want %v", s, got, want)
		}
	}
	for trial := 0; trial < 200; trial++ {
		terms := make([]dataset.Term, 1+rng.IntN(3))
		for j := range terms {
			terms[j] = dataset.Term(rng.IntN(28)) // a few outside the domain
		}
		s := dataset.NewRecord(terms...)
		if out := ix.IntersectClusters(nil, s); len(out) == 0 {
			// still checked below; absent terms must yield empty
		}
		hasAbsent := false
		for _, term := range s {
			if _, ok := ix.Rank(term); !ok {
				hasAbsent = true
			}
		}
		if hasAbsent {
			if out := ix.IntersectClusters(nil, s); out != nil {
				t.Errorf("itemset %v with absent term: got %v, want empty", s, out)
			}
			continue
		}
		check(s)
	}
}

func TestIndexEmptyForest(t *testing.T) {
	ix := Build(&core.Anonymized{K: 3, M: 2})
	if ix.NumTerms() != 0 {
		t.Fatalf("empty publication has %d terms", ix.NumTerms())
	}
	if out := ix.IntersectClusters(nil, dataset.NewRecord(1)); out != nil {
		t.Fatalf("intersect on empty index = %v", out)
	}
}
