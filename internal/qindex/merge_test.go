package qindex

import (
	"math/rand/v2"
	"slices"
	"testing"

	"disasso/internal/core"
)

// segment splits the publication's top-level clusters into contiguous parts
// at the given cut points and builds an index over each.
func segment(a *core.Anonymized, cuts []int) []*Index {
	var parts []*Index
	prev := 0
	for _, c := range append(slices.Clone(cuts), len(a.Clusters)) {
		if c <= prev {
			continue
		}
		parts = append(parts, Build(&core.Anonymized{K: a.K, M: a.M, Clusters: a.Clusters[prev:c]}))
		prev = c
	}
	return parts
}

// TestMergeMatchesBuild proves Merge over arbitrary contiguous segmentations
// is structurally identical to a one-shot Build: same rank space, same
// posting slab, same stats.
func TestMergeMatchesBuild(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		a := randomAnonymized(t, seed, 300, 60, 3, 2)
		want := Build(a)
		rng := rand.New(rand.NewPCG(seed, 77))
		cutsets := [][]int{
			nil, // single part
			{len(a.Clusters) / 2},
			{1, 2, 3}, // tiny head parts
		}
		var random []int
		for c := rng.IntN(3) + 1; c < len(a.Clusters); c += rng.IntN(4) + 1 {
			random = append(random, c)
		}
		cutsets = append(cutsets, random)
		for wi, cuts := range cutsets {
			got := Merge(a, segment(a, cuts))
			if !slices.Equal(got.terms, want.terms) {
				t.Fatalf("seed %d cuts %d: term lists differ", seed, wi)
			}
			if !slices.Equal(got.postOff, want.postOff) {
				t.Fatalf("seed %d cuts %d: posting offsets differ", seed, wi)
			}
			if !slices.Equal(got.post, want.post) {
				t.Fatalf("seed %d cuts %d: posting slabs differ", seed, wi)
			}
			if !slices.Equal(got.stats, want.stats) {
				t.Fatalf("seed %d cuts %d: stats differ", seed, wi)
			}
			if got.a != a {
				t.Fatalf("seed %d cuts %d: merged index not bound to the full publication", seed, wi)
			}
		}
	}
}

// TestMergeCoverageGuard checks the cluster-count invariant is enforced.
func TestMergeCoverageGuard(t *testing.T) {
	a := randomAnonymized(t, 9, 120, 40, 3, 2)
	parts := segment(a, []int{len(a.Clusters) / 2})
	defer func() {
		if recover() == nil {
			t.Error("Merge accepted parts that do not cover the publication")
		}
	}()
	Merge(a, parts[:1])
}
