// Benchmarks: one per table/figure of the paper's evaluation (running the
// same harness as cmd/experiments at reduced scale so `go test -bench=.`
// terminates in minutes — cmd/experiments reproduces full-size runs), plus
// ablation benchmarks for the design choices DESIGN.md calls out and
// micro-benchmarks for the pipeline stages.
package disasso_test

import (
	"bytes"
	"math/rand/v2"
	"runtime"
	"testing"

	"disasso"
	"disasso/internal/core"
	"disasso/internal/dataset"
	"disasso/internal/diffpriv"
	"disasso/internal/experiments"
	"disasso/internal/generalization"
	"disasso/internal/hierarchy"
	"disasso/internal/itemset"
	"disasso/internal/metrics"
	"disasso/internal/query"
	"disasso/internal/quest"
	"disasso/internal/realdata"
	"disasso/internal/reconstruct"
)

// benchConfig shrinks the experiment scale so each figure regenerates in
// roughly a second. EXPERIMENTS.md records the full-scale numbers.
func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.Scale = 500
	cfg.TopK = 200
	return cfg
}

// benchFigure runs one figure runner b.N times.
func benchFigure(b *testing.B, id string, scale int) {
	cfg := benchConfig()
	cfg.Scale = scale
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- One benchmark per paper table/figure ---

func BenchmarkFig6(b *testing.B)   { benchFigure(b, "fig6", 500) }
func BenchmarkFig7a(b *testing.B)  { benchFigure(b, "fig7a", 500) }
func BenchmarkFig7bc(b *testing.B) { benchFigure(b, "fig7bc", 500) }
func BenchmarkFig7d(b *testing.B)  { benchFigure(b, "fig7d", 500) }
func BenchmarkFig8ab(b *testing.B) { benchFigure(b, "fig8ab", 2000) }
func BenchmarkFig8c(b *testing.B)  { benchFigure(b, "fig8c", 2000) }
func BenchmarkFig8d(b *testing.B)  { benchFigure(b, "fig8d", 2000) }
func BenchmarkFig9ab(b *testing.B) { benchFigure(b, "fig9ab", 500) }
func BenchmarkFig10a(b *testing.B) { benchFigure(b, "fig10a", 2000) }
func BenchmarkFig10b(b *testing.B) { benchFigure(b, "fig10b", 2000) }
func BenchmarkFig11(b *testing.B)  { benchFigure(b, "fig11", 500) }

// --- Ablation benchmarks ---

// benchDataset builds the shared ablation workload: a mid-sized Quest
// dataset with the paper's density profile.
func benchDataset(b *testing.B) *dataset.Dataset {
	b.Helper()
	cfg := quest.DefaultConfig()
	cfg.NumTransactions = 20_000
	cfg.DomainSize = 1_000
	cfg.AvgTransLen = 8
	cfg.Seed = 42
	g, err := quest.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return g.Generate()
}

// BenchmarkAblationMaxClusterSize sweeps the horizontal-partitioning
// threshold: small clusters anonymize faster but disassociate more; large
// clusters preserve more itemsets at higher cost (the trade-off Section 3
// motivates). tKd-a is attached as a custom metric.
func BenchmarkAblationMaxClusterSize(b *testing.B) {
	d := benchDataset(b)
	for _, size := range []int{10, 20, 30, 50, 100} {
		b.Run(benchName("max", size), func(b *testing.B) {
			var tkdA float64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				a, err := core.Anonymize(d, core.Options{K: 5, M: 2, MaxClusterSize: size, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				tkdA = metrics.TopKDeviationLowerBound(d.Records, a, 200, 2)
			}
			b.ReportMetric(tkdA, "tKd-a")
		})
	}
}

// BenchmarkAblationRefine isolates the REFINE step's cost and quality
// effect (joint clusters recover terms stranded in term chunks).
func BenchmarkAblationRefine(b *testing.B) {
	d := benchDataset(b)
	for _, disable := range []bool{false, true} {
		name := "on"
		if disable {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			var tlost float64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				a, err := core.Anonymize(d, core.Options{K: 5, M: 2, DisableRefine: disable, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				tlost = metrics.TermsLost(d, a, 5)
			}
			b.ReportMetric(tlost, "tlost")
		})
	}
}

// BenchmarkAblationM sweeps the adversary-knowledge bound m: larger m means
// exponentially more combinations to check in VERPART (the paper reports a
// negligible effect for m > 2 on its datasets).
func BenchmarkAblationM(b *testing.B) {
	d := benchDataset(b)
	for _, m := range []int{1, 2, 3} {
		b.Run(benchName("m", m), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Anonymize(d, core.Options{K: 5, M: m, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationParallel measures the per-cluster parallelism Section 3
// points out (clusters anonymize independently). REFINE is disabled so the
// parallel section (VERPART) is what dominates; with REFINE on, its
// single-threaded fixpoint masks the scaling.
func BenchmarkAblationParallel(b *testing.B) {
	d := benchDataset(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(benchName("workers", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Anonymize(d, core.Options{K: 5, M: 2, Parallel: workers, DisableRefine: true, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Pipeline stage micro-benchmarks ---

func BenchmarkHorPart(b *testing.B) {
	d := benchDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.HorPart(d, 30, nil)
	}
}

// BenchmarkHorPartParallel sweeps the worker count of the parallel
// recursive splits; the emitted cluster list is identical at every setting.
func BenchmarkHorPartParallel(b *testing.B) {
	d := benchDataset(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(benchName("workers", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.HorPartN(d, 30, nil, workers)
			}
		})
	}
}

func BenchmarkVerPart(b *testing.B) {
	d := benchDataset(b)
	clusters := core.HorPart(d, 30, nil)
	rng := rand.New(rand.NewPCG(1, 1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.VerPart(clusters[i%len(clusters)], 5, 2, nil, rng)
	}
}

func BenchmarkAnonymizeEndToEnd(b *testing.B) {
	d := benchDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Anonymize(d, core.Options{K: 5, M: 2, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnonymizeEndToEndParallel sweeps the worker count with REFINE
// enabled: since the incremental engine, a pass's not-yet-memoized join plans
// are evaluated concurrently, so the full pipeline — not just VERPART —
// scales with workers while staying byte-identical.
func BenchmarkAnonymizeEndToEndParallel(b *testing.B) {
	d := benchDataset(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(benchName("workers", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Anonymize(d, core.Options{K: 5, M: 2, Parallel: workers, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAnonymizeStream measures the sharded streaming engine on a
// dataset roughly 4× its memory budget: end-to-end wall time for the
// counting pass, file-based shard routing, per-shard pipeline and chunked
// output assembly. Peak heap over the run is attached as a custom metric —
// the bounded-memory contract itself is asserted by the internal/shard
// tests.
func BenchmarkAnonymizeStream(b *testing.B) {
	cfg := quest.DefaultConfig()
	cfg.NumTransactions = 40_000
	cfg.DomainSize = 1_000
	cfg.AvgTransLen = 8
	cfg.Seed = 42
	g, err := quest.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var text bytes.Buffer
	if err := disasso.WriteIDs(&text, g.Generate()); err != nil {
		b.Fatal(err)
	}
	input := text.Bytes()
	// ~40k records × ~88 B/record working estimate ≈ 3.4 MiB footprint.
	const budget = 1 << 20
	b.ReportAllocs()
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	var peak uint64
	for i := 0; i < b.N; i++ {
		var out bytes.Buffer
		st, err := disasso.AnonymizeStream(bytes.NewReader(input), &out, disasso.StreamOptions{
			Core:         disasso.Options{K: 5, M: 2, Seed: 1},
			MemoryBudget: budget,
			TempDir:      b.TempDir(),
		})
		if err != nil {
			b.Fatal(err)
		}
		if !st.Spilled {
			b.Fatal("benchmark dataset did not exceed the budget")
		}
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > peak {
			peak = ms.HeapAlloc
		}
	}
	b.ReportMetric(float64(peak)/(1<<20), "peak-MiB")
}

// --- Delta republish: incremental vs from-scratch ---

// BenchmarkDeltaRepublish measures republish latency as a function of delta
// size: balanced churn deltas of 0.1%, 1% and 10% of the records against the
// full-republish baseline over the same dataset. Each delta removes a spread
// of resident records and appends fresh copies drawn from the same
// distribution — the steady state of the loadbench append/remove mix, where
// every append is eventually retired by a remove. Small shards keep the
// dirty fraction proportional to churn; dirty-shards/total-shards is
// attached so the scaling is visible in the BENCH record, not just implied
// by ns/op.
func BenchmarkDeltaRepublish(b *testing.B) {
	d := benchDataset(b)
	opts := core.Options{K: 3, M: 2, MaxClusterSize: 8, MaxShardRecords: 12, Seed: 1}
	_, st, err := core.AnonymizeWithState(d, opts)
	if err != nil {
		b.Fatal(err)
	}
	records := st.Records()
	n := len(records)
	for _, size := range []struct {
		name string
		frac float64
	}{
		{"0.1pct", 0.001},
		{"1pct", 0.01},
		{"10pct", 0.10},
	} {
		b.Run("delta="+size.name, func(b *testing.B) {
			c := int(float64(n)*size.frac + 0.5)
			if c < 1 {
				c = 1
			}
			var delta core.Delta
			stride := n / c
			for i := 0; i < c; i++ {
				r := records[i*stride]
				delta.Remove = append(delta.Remove, r)
				delta.Append = append(delta.Append, r)
			}
			var stats core.RepublishStats
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, _, s, err := st.Apply(delta)
				if err != nil {
					b.Fatal(err)
				}
				stats = s
			}
			b.ReportMetric(float64(stats.DirtyShards), "dirty-shards")
			b.ReportMetric(float64(stats.TotalShards), "total-shards")
			if stats.FullRepublish {
				b.ReportMetric(1, "fallback")
			}
		})
	}
	b.Run("full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Anonymize(d, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Query-serving benchmarks: scan vs inverted index ---

// benchQueryWorkload publishes a many-cluster dataset and draws a fixed mix
// of query itemsets (singletons, pairs, triples) from its domain — the
// serving workload of Section 6 / the disassod service.
func benchQueryWorkload(b *testing.B) (*core.Anonymized, []dataset.Record) {
	b.Helper()
	d := benchDataset(b)
	a, err := core.Anonymize(d, core.Options{K: 5, M: 2, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(17, 18))
	var queries []dataset.Record
	for i := 0; i < 256; i++ {
		size := 1 + i%3
		terms := make([]dataset.Term, size)
		for j := range terms {
			terms[j] = dataset.Term(rng.IntN(1000))
		}
		queries = append(queries, dataset.NewRecord(terms...))
	}
	return a, queries
}

// BenchmarkSupportScan is the baseline: every query walks every cluster.
func BenchmarkSupportScan(b *testing.B) {
	a, queries := benchQueryWorkload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		query.Support(a, queries[i%len(queries)])
	}
}

// BenchmarkSupportIndexed serves the identical workload through the
// inverted index (estimates are bit-identical to the scan; the property
// tests in internal/query assert it). The index is built once outside the
// timer, as a long-running service would.
func BenchmarkSupportIndexed(b *testing.B) {
	a, queries := benchQueryWorkload(b)
	est := query.NewEstimator(a)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est.Support(queries[i%len(queries)])
	}
}

// BenchmarkSupportIndexBuild measures the one-time cost the indexed path
// pays: inverted index plus singleton precomputation.
func BenchmarkSupportIndexBuild(b *testing.B) {
	a, _ := benchQueryWorkload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		query.NewEstimator(a)
	}
}

func BenchmarkReconstruct(b *testing.B) {
	d := benchDataset(b)
	a, err := core.Anonymize(d, core.Options{K: 5, M: 2, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(2, 2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reconstruct.Sample(a, rng)
	}
}

func BenchmarkTopKMine(b *testing.B) {
	d := benchDataset(b)
	// K is kept below the domain size: asking for more itemsets than there
	// are terms drives the adaptive threshold to minimum support 1, which
	// measures the pathological mining case instead of the metric workload.
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		itemset.TopK(d.Records, 500, 2)
	}
}

// Baseline comparators, on the same workload as the core benches.

func BenchmarkDiffPart(b *testing.B) {
	d := benchDataset(b)
	h, err := hierarchy.New(1000, 10)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := diffpriv.Anonymize(d, h, diffpriv.Config{Epsilon: 1.0, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAprioriGeneralization(b *testing.B) {
	d := benchDataset(b)
	h, err := hierarchy.New(1000, 10)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := generalization.Anonymize(d, h, 5, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuestGenerate(b *testing.B) {
	cfg := quest.DefaultConfig()
	cfg.NumTransactions = 10_000
	cfg.DomainSize = 1_000
	cfg.Seed = 7
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := quest.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		g.Generate()
	}
}

func BenchmarkStandInGenerate(b *testing.B) {
	spec := realdata.POS.Scaled(50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec.Generate()
	}
}

func BenchmarkFacadeAnonymize(b *testing.B) {
	cfg := disasso.DefaultQuestConfig()
	cfg.NumTransactions = 5_000
	cfg.DomainSize = 500
	cfg.Seed = 3
	d, err := disasso.GenerateQuest(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := disasso.Anonymize(d, disasso.Options{K: 5, M: 2, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchName(prefix string, v int) string {
	return prefix + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
