package disasso_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"math/rand/v2"
	"strings"
	"testing"

	"disasso"
)

// goldenConfig pins one (seed, k, m, maxClusterSize) configuration of the
// end-to-end golden test.
type goldenConfig struct {
	seed           uint64
	k, m           int
	maxClusterSize int
	shardRecords   int
	sha256         string
}

// The pinned digests cover the full pipeline: HORPART (sharded), VERPART,
// REFINE and the binary writer. Any semantic drift in any stage — intended
// or not — must show up here and be re-pinned consciously.
var goldenConfigs = []goldenConfig{
	{seed: 1, k: 3, m: 2, maxClusterSize: 12, shardRecords: 90,
		sha256: "8a775123fa7f7888f8d1df1295c7afd2eed983c18ee4b715fcfc79946699f576"},
	{seed: 99, k: 5, m: 2, maxClusterSize: 20, shardRecords: 140,
		sha256: "0076047195af9e9dc78fcfab2522b3a72d8dcf1138c54f7ba15578829fc8870b"},
	{seed: 7, k: 4, m: 3, maxClusterSize: 16, shardRecords: 0, // unsharded
		sha256: "a2b8668d9bb70b82a47bd41690ebd1c07bdf4efa4d5cb25ceece2b13dfa1f48c"},
}

// goldenDataset is the fixed input: 400 records over 60 terms, Zipf-ish
// lengths, derived from a pinned PCG stream.
func goldenDataset(t testing.TB) (*disasso.Dataset, string) {
	t.Helper()
	rng := rand.New(rand.NewPCG(0xD15A550, 0x60D1DA7A))
	var records []disasso.Record
	for i := 0; i < 400; i++ {
		terms := make([]disasso.Term, 1+rng.IntN(7))
		for j := range terms {
			terms[j] = disasso.Term(rng.IntN(60))
		}
		records = append(records, disasso.NewRecord(terms...))
	}
	d := disasso.NewDataset(records...)
	var buf bytes.Buffer
	if err := disasso.WriteIDs(&buf, d); err != nil {
		t.Fatal(err)
	}
	return d, buf.String()
}

// TestGoldenPublications pins the SHA-256 of the in-memory publication for
// each config and asserts AnonymizeStream reproduces the exact bytes, across
// memory budgets (spilled and not) and worker counts.
func TestGoldenPublications(t *testing.T) {
	d, text := goldenDataset(t)
	for ci, cfg := range goldenConfigs {
		opts := disasso.Options{
			K: cfg.k, M: cfg.m, MaxClusterSize: cfg.maxClusterSize,
			MaxShardRecords: cfg.shardRecords, Seed: cfg.seed,
		}
		a, err := disasso.Anonymize(d, opts)
		if err != nil {
			t.Fatalf("config %d: %v", ci, err)
		}
		if err := disasso.Verify(a); err != nil {
			t.Fatalf("config %d fails verification: %v", ci, err)
		}
		var want bytes.Buffer
		if err := disasso.WriteBinary(&want, a); err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256(want.Bytes())
		if got := hex.EncodeToString(sum[:]); got != cfg.sha256 {
			t.Errorf("config %d: publication SHA-256 = %s, pinned %s", ci, got, cfg.sha256)
		}

		budgets := []int64{4 << 10, 1 << 30}
		if cfg.shardRecords == 0 {
			// An unsharded pin can only be reproduced without spilling: a
			// tiny budget would make the engine derive its own shard cut.
			budgets = budgets[1:]
		}
		for _, workers := range []int{1, 3, 8} {
			for _, budget := range budgets {
				sopts := disasso.StreamOptions{Core: opts, MemoryBudget: budget, TempDir: t.TempDir()}
				sopts.Core.Parallel = workers
				var got bytes.Buffer
				st, err := disasso.AnonymizeStream(strings.NewReader(text), &got, sopts)
				if err != nil {
					t.Fatalf("config %d workers=%d budget=%d: %v", ci, workers, budget, err)
				}
				if !bytes.Equal(got.Bytes(), want.Bytes()) {
					t.Errorf("config %d workers=%d budget=%d (%d shards, spilled=%v): stream bytes differ from golden",
						ci, workers, budget, st.Shards, st.Spilled)
				}
			}
		}
	}
}
