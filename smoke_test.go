package disasso_test

import (
	"bytes"
	"context"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"
)

// The repo carries six mains without their own test files (the examples and
// cmd/experiments). These smoke tests build and run each one on a tiny
// workload so they cannot rot silently: a compile error, a panic, or a
// regression in the APIs they demonstrate fails the suite.

// goTool locates the go binary, skipping the test where there is none (the
// library itself must stay testable without a toolchain on PATH).
func goTool(t *testing.T) string {
	t.Helper()
	path, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not on PATH")
	}
	return path
}

// buildAndRun compiles pkg into dir and runs it with args, returning the
// combined output.
func buildAndRun(t *testing.T, pkg string, args ...string) string {
	t.Helper()
	gobin := goTool(t)
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	bin := filepath.Join(t.TempDir(), "main")
	if runtime.GOOS == "windows" {
		bin += ".exe"
	}
	build := exec.CommandContext(ctx, gobin, "build", "-o", bin, pkg)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}

	var out bytes.Buffer
	cmd := exec.CommandContext(ctx, bin, args...)
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		t.Fatalf("run %s %v: %v\n%s", pkg, args, err, clipOutput(out.String()))
	}
	return out.String()
}

func clipOutput(s string) string {
	if len(s) > 2000 {
		return s[:2000] + "…"
	}
	return s
}

func TestSmokeExampleQuickstart(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a binary")
	}
	out := buildAndRun(t, "disasso/examples/quickstart")
	if !strings.Contains(out, "anonymized 10 records") {
		t.Errorf("quickstart output missing summary:\n%s", clipOutput(out))
	}
	if !strings.Contains(out, "reconstructed") {
		t.Errorf("quickstart output missing reconstruction:\n%s", clipOutput(out))
	}
}

func TestSmokeExampleAudit(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a binary")
	}
	out := buildAndRun(t, "disasso/examples/audit")
	if strings.Contains(strings.ToLower(out), "violation") {
		t.Errorf("audit example reported a guarantee violation:\n%s", clipOutput(out))
	}
}

func TestSmokeExampleDiversity(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a binary")
	}
	buildAndRun(t, "disasso/examples/diversity")
}

func TestSmokeExampleRetail(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a binary")
	}
	buildAndRun(t, "disasso/examples/retail")
}

func TestSmokeExampleWeblog(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a binary")
	}
	buildAndRun(t, "disasso/examples/weblog")
}

func TestSmokeExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a binary")
	}
	out := buildAndRun(t, "disasso/cmd/experiments", "-fig", "fig7a", "-scale", "500")
	if !strings.Contains(out, "fig7a") {
		t.Errorf("experiments output missing figure tag:\n%s", clipOutput(out))
	}
}
