// Command loadbench drives a disassod HTTP service with a workload-model
// query stream and reports per-endpoint latency histograms — the traffic
// side of the repo's "serve heavy query load" north star. The workload is
// drawn from the published snapshot's own term domain by internal/load:
// Zipf-skewed singleton supports, correlated multi-term itemsets sampled
// from co-occurring cluster terms, reconstruction-sampling calls and
// publish/delete churn, mixed by a small text spec.
//
// Usage:
//
//	loadbench -data web.txt -inprocess -clients 8 -duration 10s
//	loadbench -data web.txt -addr http://localhost:8080 -mix 'singleton zipf=1.3'
//
// The driver anonymizes the dataset locally (same parameters the server
// publishes with) to build the model, publishes the dataset to the target,
// then runs N closed-loop clients — or open-loop at a fixed aggregate
// -rate — until -duration or -requests is exhausted. Churn ops republish
// and delete a scratch "<dataset>-churn" name so the measured query target
// stays resident; append/remove ops drive the incremental delta-republish
// endpoints against the measured dataset itself (publish with
// -shard-records > 0 so deltas re-anonymize only dirty shards), each client
// removing batches it previously appended.
//
// With -bench the results are printed as `go test -bench`-style lines, so
// CI pipes them through cmd/benchjson into the archived BENCH_PR7.json:
//
//	loadbench -data web.txt -inprocess -bench | benchjson > bench.json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"disasso"
	"disasso/internal/core"
	"disasso/internal/dataset"
	"disasso/internal/load"
)

type config struct {
	data      string        // dataset file (ReadIDs text format)
	addr      string        // target base URL; "" with inprocess
	inprocess bool          // serve an in-process disassod on a loopback listener
	name      string        // dataset name to publish and query
	k, m      int           // anonymization parameters
	maxClu    int           // MaxClusterSize
	shardRecs int           // MaxShardRecords (shard cut for delta republish)
	seed      uint64        // anonymization + workload seed
	specFile  string        // mix spec file
	mix       string        // inline mix spec (overrides specFile)
	clients   int           // concurrent client goroutines
	duration  time.Duration // stop after this long (0 = requests-bound only)
	requests  int64         // stop after this many ops (0 = duration-bound only)
	rate      float64       // aggregate target ops/s (0 = closed loop)
	batch     int           // support queries coalesced per POST request
	cache     int           // in-process server support-cache entries (-1 disables)
	noPublish bool          // assume the dataset is already published
	benchFmt  bool          // emit go-bench-style lines on stdout
	label     string        // bench line label
}

func main() {
	var cfg config
	flag.StringVar(&cfg.data, "data", "", "dataset file, one record of integer term ids per line (required)")
	flag.StringVar(&cfg.addr, "addr", "", "target disassod base URL, e.g. http://localhost:8080")
	flag.BoolVar(&cfg.inprocess, "inprocess", false, "serve an in-process disassod on a loopback listener instead of -addr")
	flag.StringVar(&cfg.name, "dataset", "bench", "dataset name to publish and query")
	flag.IntVar(&cfg.k, "k", 5, "anonymity parameter k")
	flag.IntVar(&cfg.m, "m", 2, "anonymity parameter m")
	flag.IntVar(&cfg.maxClu, "maxcluster", 0, "maximum cluster size (0 = library default)")
	flag.IntVar(&cfg.shardRecs, "shard-records", 0, "shard cut in records (0 = one global shard; set > 0 so append/remove deltas republish incrementally)")
	flag.Uint64Var(&cfg.seed, "seed", 1, "anonymization and workload PRNG seed")
	flag.StringVar(&cfg.specFile, "spec", "", "workload mix spec file (default: built-in mixed read-heavy spec)")
	flag.StringVar(&cfg.mix, "mix", "", "inline workload mix spec, ';' separates entries (overrides -spec)")
	flag.IntVar(&cfg.clients, "clients", 8, "concurrent clients")
	flag.DurationVar(&cfg.duration, "duration", 5*time.Second, "run length (0 = until -requests)")
	flag.Int64Var(&cfg.requests, "requests", 0, "total op budget (0 = until -duration)")
	flag.Float64Var(&cfg.rate, "rate", 0, "aggregate open-loop target ops/s (0 = closed loop)")
	flag.IntVar(&cfg.batch, "batch", 1, "consecutive support queries coalesced into one batch POST (analyst-client style)")
	flag.IntVar(&cfg.cache, "cache", 0, "in-process server support-cache entries (0 = server default, <0 disables)")
	flag.BoolVar(&cfg.noPublish, "no-publish", false, "assume the dataset is already published under -dataset")
	flag.BoolVar(&cfg.benchFmt, "bench", false, "emit go test -bench style result lines on stdout (summary goes to stderr)")
	flag.StringVar(&cfg.label, "label", "Loadbench", "benchmark name prefix for -bench output")
	flag.Parse()
	if err := run(cfg, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "loadbench:", err)
		os.Exit(1)
	}
}

// endpointStats aggregates one mix entry's results across clients. The
// histogram is per request (a batch POST is one sample, attributed to its
// first query's entry); queries counts the individual workload ops, so
// batched runs report both honestly.
type endpointStats struct {
	hist    load.Histogram
	queries int64
	errors  int64 // non-2xx statuses outside the expected churn outcomes
}

// runStats is everything a finished run reports.
type runStats struct {
	perEntry []endpointStats
	wall     time.Duration
}

func run(cfg config, out, logw io.Writer) error {
	switch {
	case cfg.data == "":
		return errors.New("-data is required")
	case cfg.inprocess && cfg.addr != "":
		return errors.New("-inprocess and -addr are mutually exclusive")
	case !cfg.inprocess && cfg.addr == "":
		return errors.New("one of -addr or -inprocess is required")
	case cfg.clients < 1:
		return errors.New("-clients must be ≥ 1")
	case cfg.duration <= 0 && cfg.requests <= 0:
		return errors.New("one of -duration or -requests must be positive")
	case cfg.rate < 0:
		return errors.New("-rate must be ≥ 0")
	case cfg.batch < 0 || cfg.batch > 10_000:
		return errors.New("-batch must be in [0, 10000] (0 and 1 both mean unbatched)")
	}

	spec, err := resolveSpec(cfg)
	if err != nil {
		return err
	}

	raw, err := os.ReadFile(cfg.data)
	if err != nil {
		return err
	}
	d, err := dataset.ReadIDs(strings.NewReader(string(raw)))
	if err != nil {
		return err
	}
	opts := core.Options{K: cfg.k, M: cfg.m, MaxClusterSize: cfg.maxClu, MaxShardRecords: cfg.shardRecs, Seed: cfg.seed}
	fmt.Fprintf(logw, "loadbench: anonymizing %d records (k=%d m=%d) for the workload model\n", len(d.Records), cfg.k, cfg.m)
	a, err := core.Anonymize(d, opts)
	if err != nil {
		return err
	}
	model, err := load.NewModel(a, spec, cfg.seed)
	if err != nil {
		return err
	}

	base := cfg.addr
	if cfg.inprocess {
		srv, shutdown, err := startInprocess(cfg)
		if err != nil {
			return err
		}
		defer shutdown()
		base = srv
		fmt.Fprintf(logw, "loadbench: in-process disassod on %s (cache=%d)\n", base, cfg.cache)
	}

	cl := &driver{
		cfg:   cfg,
		base:  strings.TrimSuffix(base, "/"),
		body:  string(raw),
		model: model,
		client: &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: cfg.clients * 2,
		}},
	}
	if !cfg.noPublish {
		if err := cl.publish(cl.dataURL(cfg.name), true); err != nil {
			return fmt.Errorf("initial publish: %w", err)
		}
	}

	stats := cl.drive(len(spec.Entries))
	report(out, logw, cfg, spec, stats)
	return nil
}

// resolveSpec picks the workload mix: -mix inline, -spec file, or default.
func resolveSpec(cfg config) (*load.Spec, error) {
	switch {
	case cfg.mix != "":
		return load.ParseSpec(cfg.mix)
	case cfg.specFile != "":
		raw, err := os.ReadFile(cfg.specFile)
		if err != nil {
			return nil, err
		}
		return load.ParseSpec(string(raw))
	}
	return load.DefaultSpec(), nil
}

// startInprocess serves disasso.NewServer on a loopback listener, returning
// the base URL and a shutdown func.
func startInprocess(cfg config) (string, func(), error) {
	handler := disasso.NewServer(disasso.ServerOptions{SupportCacheEntries: cfg.cache})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: handler}
	go srv.Serve(ln)
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}

// driver owns the shared state of one load run.
type driver struct {
	cfg    config
	base   string
	body   string
	model  *load.Model
	client *http.Client

	pubSeq atomic.Uint64 // round-robins churn republish seeds
	done   atomic.Int64  // ops issued, for the -requests budget
}

func (dr *driver) dataURL(name string) string {
	return dr.base + "/v1/datasets/" + name
}

// drive runs the client goroutines and merges their per-entry stats.
func (dr *driver) drive(entries int) runStats {
	var deadline time.Time
	if dr.cfg.duration > 0 {
		deadline = time.Now().Add(dr.cfg.duration)
	}
	perClient := make([][]endpointStats, dr.cfg.clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < dr.cfg.clients; c++ {
		perClient[c] = make([]endpointStats, entries)
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			dr.clientLoop(c, perClient[c], deadline)
		}(c)
	}
	wg.Wait()
	stats := runStats{perEntry: make([]endpointStats, entries), wall: time.Since(start)}
	for _, cs := range perClient {
		for i := range cs {
			stats.perEntry[i].hist.Merge(&cs[i].hist)
			stats.perEntry[i].queries += cs[i].queries
			stats.perEntry[i].errors += cs[i].errors
		}
	}
	return stats
}

// clientLoop drains one workload stream until the deadline or the shared
// request budget runs out. Open-loop mode paces each client at rate/clients
// ops per second, measuring latency from the scheduled send time (so queue
// delay counts, the standard coordinated-omission fix); closed-loop mode
// issues back to back.
func (dr *driver) clientLoop(id int, stats []endpointStats, deadline time.Time) {
	st := dr.model.Stream(id)
	cs := &clientState{}
	var interval time.Duration
	if dr.cfg.rate > 0 {
		interval = time.Duration(float64(time.Second) * float64(dr.cfg.clients) / dr.cfg.rate)
	}
	next := time.Now()
	var pending *load.Op
	for {
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return
		}
		// Each op is charged against the shared -requests budget exactly
		// once, when it is drawn from the stream (a carried-over pending op
		// was charged by the batching loop that drew it).
		var op load.Op
		if pending != nil {
			op, pending = *pending, nil
		} else {
			if dr.cfg.requests > 0 && dr.done.Add(1) > dr.cfg.requests {
				return
			}
			op = st.Next()
		}
		stats[op.Entry].queries++
		// Coalesce consecutive support queries into one batch POST (the
		// analyst-client shape; the server's batch endpoint exists for it).
		// The batch stops early at the first non-support op, which is
		// carried to the next iteration; the request's latency is
		// attributed to the entry of its first query, while the query
		// counts — and the -requests budget — charge every coalesced op.
		var itemsets []dataset.Record
		if op.Kind == load.OpSupport && dr.cfg.batch > 1 {
			itemsets = append(itemsets, op.Itemset)
			for len(itemsets) < dr.cfg.batch {
				if dr.cfg.requests > 0 && dr.done.Add(1) > dr.cfg.requests {
					break
				}
				nxt := st.Next()
				if nxt.Kind != load.OpSupport {
					pending = &nxt
					break
				}
				stats[nxt.Entry].queries++
				itemsets = append(itemsets, nxt.Itemset)
			}
		}
		opsInRequest := 1
		if itemsets != nil {
			opsInRequest = len(itemsets)
		}
		var began time.Time
		if interval > 0 {
			// Open loop paces by ops, so a batch of B queries occupies B
			// schedule slots and -rate means queries/s whatever the batch
			// size. Never sleep past the deadline: an op whose slot falls
			// outside the window is not issued at all.
			if wait := time.Until(next); wait > 0 {
				if !deadline.IsZero() && time.Now().Add(wait).After(deadline) {
					return
				}
				time.Sleep(wait)
			}
			began = next
			next = next.Add(interval * time.Duration(opsInRequest))
		} else {
			began = time.Now()
		}
		var ok bool
		if itemsets != nil {
			ok = dr.doSupport(itemsets)
		} else {
			ok = dr.doOp(cs, op)
		}
		stats[op.Entry].hist.Observe(time.Since(began))
		if !ok {
			stats[op.Entry].errors++
		}
	}
}

// doSupport posts one batch support request.
func (dr *driver) doSupport(itemsets []dataset.Record) bool {
	var sb strings.Builder
	sb.WriteString(`{"itemsets":[`)
	for i, s := range itemsets {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteByte('[')
		for j, t := range s {
			if j > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d", t)
		}
		sb.WriteByte(']')
	}
	sb.WriteString(`]}`)
	status, err := dr.post(dr.dataURL(dr.cfg.name)+"/support", sb.String())
	return err == nil && status == http.StatusOK
}

// clientState is one client goroutine's delta bookkeeping: the batches it
// appended and has not yet removed, oldest first, so OpRemove always targets
// records that were genuinely resident when appended.
type clientState struct {
	pending []string // rendered append batches
}

// doOp issues one operation, reporting whether it succeeded. Expected churn
// outcomes (404 after a delete, 409 where replace or a delta races) count as
// success; transport errors and every other non-2xx count as failures.
func (dr *driver) doOp(cs *clientState, op load.Op) bool {
	churn := dr.dataURL(dr.cfg.name + "-churn")
	switch op.Kind {
	case load.OpSupport:
		return dr.doSupport([]dataset.Record{op.Itemset})
	case load.OpReconstruct:
		body := fmt.Sprintf(`{"samples":%d,"seed":%d}`, op.Samples, op.Seed)
		status, err := dr.post(dr.dataURL(dr.cfg.name)+"/reconstruct", body)
		return err == nil && status == http.StatusOK
	case load.OpPublish:
		seed := 1 + dr.pubSeq.Add(1)%8
		url := fmt.Sprintf("%s?k=%d&m=%d&seed=%d&replace=1", churn, dr.cfg.k, dr.cfg.m, seed)
		status, err := dr.post(url, dr.body)
		return err == nil && status == http.StatusCreated
	case load.OpDelete:
		req, err := http.NewRequest(http.MethodDelete, churn, nil)
		if err != nil {
			return false
		}
		status, err := dr.do(req)
		return err == nil && (status == http.StatusNoContent || status == http.StatusNotFound)
	case load.OpAppend:
		batch := renderBatch(op.Batch)
		status, err := dr.post(dr.dataURL(dr.cfg.name)+"/append", batch)
		if err != nil {
			return false
		}
		if status == http.StatusOK {
			cs.pending = append(cs.pending, batch)
		}
		return status == http.StatusOK || status == http.StatusNotFound || status == http.StatusConflict
	case load.OpRemove:
		if len(cs.pending) == 0 {
			return true // nothing appended yet; pacing op, not a failure
		}
		batch := cs.pending[0]
		cs.pending = cs.pending[1:]
		status, err := dr.post(dr.dataURL(dr.cfg.name)+"/remove", batch)
		if err != nil {
			return false
		}
		// 409: another client's replace or remove raced this batch away.
		return status == http.StatusOK || status == http.StatusNotFound || status == http.StatusConflict
	}
	return false
}

// renderBatch writes a delta batch in the endpoints' text body format.
func renderBatch(records []dataset.Record) string {
	var sb strings.Builder
	for _, r := range records {
		for j, t := range r {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%d", t)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func (dr *driver) post(url, body string) (int, error) {
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		return 0, err
	}
	return dr.do(req)
}

// do sends the request, drains and closes the body (connection reuse), and
// returns the status.
func (dr *driver) do(req *http.Request) (int, error) {
	resp, err := dr.client.Do(req)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// publish uploads the dataset under the given URL.
func (dr *driver) publish(url string, replace bool) error {
	full := fmt.Sprintf("%s?k=%d&m=%d&maxcluster=%d&shardrecords=%d&seed=%d",
		url, dr.cfg.k, dr.cfg.m, dr.cfg.maxClu, dr.cfg.shardRecs, dr.cfg.seed)
	if replace {
		full += "&replace=1"
	}
	status, err := dr.post(full, dr.body)
	if err != nil {
		return err
	}
	if status != http.StatusCreated {
		return fmt.Errorf("POST %s: status %d", full, status)
	}
	return nil
}

// entryName labels a mix entry for reporting: its kind, disambiguated by
// index when the kind repeats.
func entryName(spec *load.Spec, i int) string {
	n := 0
	for j, e := range spec.Entries {
		if e.Kind == spec.Entries[i].Kind {
			if j == i {
				break
			}
			n++
		}
	}
	if n > 0 {
		return fmt.Sprintf("%s%d", spec.Entries[i].Kind, n+1)
	}
	return spec.Entries[i].Kind
}

// report writes the human summary to logw and, with -bench, the
// benchjson-parsable lines to out.
func report(out, logw io.Writer, cfg config, spec *load.Spec, stats runStats) {
	var total load.Histogram
	var totalErrs, totalQueries int64
	fmt.Fprintf(logw, "loadbench: %d clients, %v wall\n", cfg.clients, stats.wall.Round(time.Millisecond))
	fmt.Fprintf(logw, "%-14s %10s %10s %8s %10s %10s %10s %10s %10s\n",
		"endpoint", "requests", "queries", "errors", "mean", "p50", "p95", "p99", "max")
	for i := range stats.perEntry {
		es := &stats.perEntry[i]
		if es.hist.Count() == 0 && es.queries == 0 {
			continue
		}
		total.Merge(&es.hist)
		totalErrs += es.errors
		totalQueries += es.queries
		fmt.Fprintf(logw, "%-14s %10d %10d %8d %10v %10v %10v %10v %10v\n",
			entryName(spec, i), es.hist.Count(), es.queries, es.errors,
			es.hist.Mean().Round(time.Microsecond),
			es.hist.Quantile(0.50).Round(time.Microsecond),
			es.hist.Quantile(0.95).Round(time.Microsecond),
			es.hist.Quantile(0.99).Round(time.Microsecond),
			es.hist.Max().Round(time.Microsecond))
	}
	fmt.Fprintf(logw, "total: %d requests (%d queries), %d errors, %.0f req/s, %.0f queries/s\n",
		total.Count(), totalQueries, totalErrs,
		float64(total.Count())/stats.wall.Seconds(), float64(totalQueries)/stats.wall.Seconds())

	if !cfg.benchFmt {
		return
	}
	// go test -bench line shape, so cmd/benchjson parses it unchanged:
	// name, iterations (requests), then value-unit pairs.
	procs := runtime.GOMAXPROCS(0)
	for i := range stats.perEntry {
		es := &stats.perEntry[i]
		if es.hist.Count() == 0 {
			continue
		}
		writeBenchLine(out, fmt.Sprintf("Benchmark%s/%s-%d", cfg.label, entryName(spec, i), procs), es, stats.wall)
	}
	writeBenchLine(out, fmt.Sprintf("Benchmark%s/total-%d", cfg.label, procs),
		&endpointStats{hist: total, queries: totalQueries, errors: totalErrs}, stats.wall)
}

// writeBenchLine emits one bench-format result line: per-request latency
// quantiles plus request and query throughput (they differ under -batch).
func writeBenchLine(out io.Writer, name string, es *endpointStats, wall time.Duration) {
	h := &es.hist
	fmt.Fprintf(out, "%s \t%d\t%d ns/op\t%d p50-ns\t%d p95-ns\t%d p99-ns\t%d max-ns\t%d errors\t%.1f req/s\t%.1f queries/s\n",
		name, h.Count(), int64(h.Mean()),
		int64(h.Quantile(0.50)), int64(h.Quantile(0.95)), int64(h.Quantile(0.99)),
		int64(h.Max()), es.errors, float64(h.Count())/wall.Seconds(), float64(es.queries)/wall.Seconds())
}
