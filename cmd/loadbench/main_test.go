package main

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// writeTestData renders a small random dataset file in the upload format.
func writeTestData(t *testing.T, n, domain, maxLen int) string {
	t.Helper()
	rng := rand.New(rand.NewPCG(5, 0x10AD8E4C4))
	var b strings.Builder
	for i := 0; i < n; i++ {
		seen := map[int]bool{}
		for j := 0; j < 1+rng.IntN(maxLen); j++ {
			v := rng.IntN(domain)
			if seen[v] {
				continue
			}
			if len(seen) > 0 {
				b.WriteByte(' ')
			}
			seen[v] = true
			fmt.Fprintf(&b, "%d", v)
		}
		b.WriteByte('\n')
	}
	path := filepath.Join(t.TempDir(), "data.txt")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestLoadbenchInprocessSmoke runs the whole driver against an in-process
// disassod: a bounded request budget, mixed ops including churn, bench
// output on. The run must finish with zero errors and emit bench lines
// cmd/benchjson can parse (even field count, integer iteration counts).
func TestLoadbenchInprocessSmoke(t *testing.T) {
	cfg := config{
		data:      writeTestData(t, 200, 50, 6),
		inprocess: true,
		name:      "smoke",
		k:         3, m: 2,
		seed:     1,
		clients:  4,
		requests: 400,
		duration: 30 * time.Second, // budget-bound; the duration is a backstop
		benchFmt: true,
		label:    "Smoke",
	}
	var out, logw bytes.Buffer
	if err := run(cfg, &out, &logw); err != nil {
		t.Fatalf("run: %v\nlog:\n%s", err, logw.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) < 2 {
		t.Fatalf("want ≥ 2 bench lines, got %q", out.String())
	}
	totalOps := int64(0)
	for _, line := range lines {
		fields := strings.Fields(line)
		if !strings.HasPrefix(fields[0], "BenchmarkSmoke/") {
			t.Errorf("bench line %q lacks the label prefix", line)
		}
		if len(fields) < 4 || len(fields)%2 != 0 {
			t.Errorf("bench line %q not benchjson-parsable (%d fields)", line, len(fields))
			continue
		}
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			t.Errorf("bench line %q: bad iteration count: %v", line, err)
		}
		if strings.HasPrefix(fields[0], "BenchmarkSmoke/total-") {
			totalOps = n
		}
		for i := 2; i+1 < len(fields); i += 2 {
			if _, err := strconv.ParseFloat(fields[i], 64); err != nil {
				t.Errorf("bench line %q: metric %q not numeric", line, fields[i])
			}
		}
		if strings.Contains(line, "errors") {
			for i := 2; i+1 < len(fields); i += 2 {
				if fields[i+1] == "errors" && fields[i] != "0" {
					t.Errorf("bench line %q reports errors", line)
				}
			}
		}
	}
	if totalOps == 0 {
		t.Error("no total line emitted")
	}
	if totalOps > 400 {
		t.Errorf("request budget exceeded: %d ops", totalOps)
	}
	if !strings.Contains(logw.String(), "total:") {
		t.Errorf("human summary missing from log:\n%s", logw.String())
	}
}

// TestLoadbenchBatchBudget: -requests bounds individual workload queries
// even when batching coalesces them into fewer POSTs.
func TestLoadbenchBatchBudget(t *testing.T) {
	cfg := config{
		data:      writeTestData(t, 150, 40, 5),
		inprocess: true,
		name:      "budget",
		k:         3, m: 2,
		seed:     3,
		mix:      "singleton zipf=1.2; itemset min=2 max=2",
		clients:  2,
		requests: 100,
		duration: 30 * time.Second, // backstop; the budget must stop the run
		batch:    16,
	}
	var out, logw bytes.Buffer
	if err := run(cfg, &out, &logw); err != nil {
		t.Fatalf("run: %v\nlog:\n%s", err, logw.String())
	}
	m := regexp.MustCompile(`total: (\d+) requests \((\d+) queries\)`).FindStringSubmatch(logw.String())
	if m == nil {
		t.Fatalf("no total line in log:\n%s", logw.String())
	}
	requests, _ := strconv.ParseInt(m[1], 10, 64)
	queries, _ := strconv.ParseInt(m[2], 10, 64)
	if queries == 0 || queries > 100 {
		t.Errorf("budget of 100 queries produced %d", queries)
	}
	if requests > queries {
		t.Errorf("more requests (%d) than queries (%d)", requests, queries)
	}
	if requests == queries {
		t.Errorf("batching never coalesced: %d requests for %d queries", requests, queries)
	}
}

// TestLoadbenchConfigValidation: bad configurations fail fast, before any
// anonymization work.
func TestLoadbenchConfigValidation(t *testing.T) {
	base := config{data: "x.txt", inprocess: true, clients: 1, duration: time.Second, name: "d", k: 3, m: 2}
	cases := []struct {
		name string
		mod  func(*config)
	}{
		{"no data", func(c *config) { c.data = "" }},
		{"addr and inprocess", func(c *config) { c.addr = "http://x" }},
		{"no target", func(c *config) { c.inprocess = false }},
		{"zero clients", func(c *config) { c.clients = 0 }},
		{"no stop condition", func(c *config) { c.duration = 0; c.requests = 0 }},
		{"negative rate", func(c *config) { c.rate = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mod(&cfg)
			var out, logw bytes.Buffer
			if err := run(cfg, &out, &logw); err == nil {
				t.Error("bad config accepted")
			}
		})
	}
}

// TestLoadbenchOpenLoopAndSpecFile exercises the open-loop pacing path and
// a mix spec loaded from a file.
func TestLoadbenchOpenLoopAndSpecFile(t *testing.T) {
	specPath := filepath.Join(t.TempDir(), "mix.spec")
	if err := os.WriteFile(specPath, []byte("singleton zipf=1.2\nitemset min=2 max=2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := config{
		data:      writeTestData(t, 120, 40, 5),
		inprocess: true,
		name:      "openloop",
		k:         3, m: 2,
		seed:     2,
		specFile: specPath,
		clients:  2,
		rate:     400,
		duration: 400 * time.Millisecond,
	}
	var out, logw bytes.Buffer
	if err := run(cfg, &out, &logw); err != nil {
		t.Fatalf("run: %v\nlog:\n%s", err, logw.String())
	}
	log := logw.String()
	if !strings.Contains(log, "singleton") || !strings.Contains(log, "itemset") {
		t.Errorf("per-endpoint rows missing:\n%s", log)
	}
	// Open loop at 400 ops/s for 0.4s ≈ 160 ops; closed loop on this tiny
	// dataset would do thousands. Allow generous slack either way.
	if strings.Contains(log, "total: 0 requests") {
		t.Errorf("no requests recorded:\n%s", log)
	}
}
