// Command disassolint runs the project's invariant analyzers (detorder,
// densedomain, closecheck, hookpair — see internal/lint) over the packages
// matched by its arguments and exits non-zero if any finding survives the
// suppression rules. It complements `go vet` and staticcheck in the CI lint
// job:
//
//	go run ./cmd/disassolint ./...
//
// With -list, it prints the suite and each analyzer's scope instead.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"disasso/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "print the analyzer suite and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: disassolint [-list] packages...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			scope := "all packages"
			if len(a.Scope) > 0 {
				scope = strings.Join(a.Scope, ", ")
			}
			fmt.Printf("%-12s %s\n%14s scope: %s\n", a.Name, a.Doc, "", scope)
		}
		return
	}
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	pkgs, err := lint.Load("", flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "disassolint: %v\n", err)
		os.Exit(2)
	}

	exit := 0
	for _, pkg := range pkgs {
		diags, err := lint.RunAnalyzers(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "disassolint: %v\n", err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Println(d)
			exit = 1
		}
	}
	os.Exit(exit)
}
