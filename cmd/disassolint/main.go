// Command disassolint runs the project's invariant analyzers — the AST
// checks (detorder, densedomain, closecheck, hookpair) and the dataflow
// checks (immutsnap, lockscope, atomicwrite, unsafeslab) — over the packages
// matched by its arguments and exits non-zero if any finding survives the
// suppression rules. It complements `go vet` and staticcheck in the CI lint
// job:
//
//	go run ./cmd/disassolint ./...
//
// With -list, it prints the suite and each analyzer's scope instead. With
// -json, findings are emitted as one JSON object per line (file, line,
// column, analyzer, message) for machine consumers — CI turns them into
// GitHub annotations.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"disasso/internal/lint"
)

// finding is the machine-readable form of one diagnostic.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "print the analyzer suite and exit")
	jsonOut := flag.Bool("json", false, "emit findings as JSON lines instead of text")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: disassolint [-list] [-json] packages...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			scope := "all packages"
			if len(a.Scope) > 0 {
				scope = strings.Join(a.Scope, ", ")
			}
			fmt.Printf("%-12s %s\n%14s scope: %s\n", a.Name, a.Doc, "", scope)
		}
		return
	}
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	pkgs, err := lint.Load("", flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "disassolint: %v\n", err)
		os.Exit(2)
	}

	enc := json.NewEncoder(os.Stdout)
	exit := 0
	for _, pkg := range pkgs {
		diags, err := lint.RunAnalyzers(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "disassolint: %v\n", err)
			os.Exit(2)
		}
		for _, d := range diags {
			exit = 1
			if !*jsonOut {
				fmt.Println(d)
				continue
			}
			if err := enc.Encode(finding{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			}); err != nil {
				fmt.Fprintf(os.Stderr, "disassolint: encoding finding: %v\n", err)
				os.Exit(2)
			}
		}
	}
	os.Exit(exit)
}
