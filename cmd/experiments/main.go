// Command experiments regenerates the tables and figures of the paper's
// Section 7 evaluation (see EXPERIMENTS.md for the paper-vs-measured
// record).
//
// Usage:
//
//	experiments                 # every figure at scale 1/10
//	experiments -fig fig7a      # one figure
//	experiments -scale 1        # the paper's full dataset sizes
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"disasso/internal/experiments"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "figure to run: all, or one of "+strings.Join(experiments.RegistryOrder, ", "))
		scale    = flag.Int("scale", 10, "divide all dataset sizes by this factor (1 = paper size)")
		k        = flag.Int("k", 5, "k parameter")
		m        = flag.Int("m", 2, "m parameter")
		topK     = flag.Int("topk", 1000, "top-K itemsets for tKd")
		maxSize  = flag.Int("maxsize", 3, "maximum itemset size mined for tKd")
		seed     = flag.Uint64("seed", 1, "PRNG seed")
		parallel = flag.Int("parallel", 0, "anonymizer workers (0 = all cores)")
	)
	flag.Parse()

	cfg := experiments.Config{
		K: *k, M: *m, TopK: *topK, MaxItemsetSize: *maxSize,
		Scale: *scale, Seed: *seed, Parallel: *parallel,
	}

	ids := experiments.RegistryOrder
	if *fig != "all" {
		ids = strings.Split(*fig, ",")
	}
	for _, id := range ids {
		start := time.Now()
		tables, err := experiments.Run(strings.TrimSpace(id), cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		for _, t := range tables {
			t.Fprint(os.Stdout)
		}
		fmt.Printf("(%s completed in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
}
