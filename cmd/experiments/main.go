// Command experiments regenerates the tables and figures of the paper's
// Section 7 evaluation (see EXPERIMENTS.md for the paper-vs-measured
// record).
//
// Usage:
//
//	experiments                 # every figure at scale 1/10
//	experiments -fig fig7a      # one figure
//	experiments -scale 1        # the paper's full dataset sizes
//
// Profiling (for hunting pipeline hot spots without editing code):
//
//	experiments -fig fig8ab -cpuprofile cpu.out
//	experiments -fig fig8ab -memprofile mem.out
//	experiments -fig fig8ab -trace trace.out
//
// The outputs load into `go tool pprof` and `go tool trace` respectively.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strings"
	"time"

	"disasso/internal/experiments"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "figure to run: all, or one of "+strings.Join(experiments.RegistryOrder, ", "))
		scale    = flag.Int("scale", 10, "divide all dataset sizes by this factor (1 = paper size)")
		k        = flag.Int("k", 5, "k parameter")
		m        = flag.Int("m", 2, "m parameter")
		topK     = flag.Int("topk", 1000, "top-K itemsets for tKd")
		maxSize  = flag.Int("maxsize", 3, "maximum itemset size mined for tKd")
		seed     = flag.Uint64("seed", 1, "PRNG seed")
		parallel = flag.Int("parallel", 0, "anonymizer workers (0 = all cores)")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		traceFile  = flag.String("trace", "", "write a runtime execution trace to this file")
	)
	flag.Parse()

	cfg := experiments.Config{
		K: *k, M: *m, TopK: *topK, MaxItemsetSize: *maxSize,
		Scale: *scale, Seed: *seed, Parallel: *parallel,
	}
	// run's defers stop the profile writers before main exits, so a failing
	// figure still leaves loadable cpu/trace output — the very runs the
	// profiling flags exist to debug.
	if err := run(cfg, *fig, *cpuProfile, *memProfile, *traceFile); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(cfg experiments.Config, fig, cpuProfile, memProfile, traceFile string) (retErr error) {
	// Profile files are closed after StopCPUProfile/trace.Stop (defers run
	// LIFO) and the close error is propagated: a truncated profile that
	// still "succeeded" is exactly the failure mode the lint suite exists
	// to prevent.
	closeKeeping := func(f *os.File) {
		if cerr := f.Close(); cerr != nil && retErr == nil {
			retErr = cerr
		}
	}
	if cpuProfile != "" {
		// Buffered for the same reason as the heap profile below: pprof
		// reports no write errors, so the checked write happens here. The
		// defer still runs on a failing figure, keeping the profile.
		var buf bytes.Buffer
		if err := pprof.StartCPUProfile(&buf); err != nil {
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			if werr := os.WriteFile(cpuProfile, buf.Bytes(), 0o644); werr != nil && retErr == nil {
				retErr = werr
			}
		}()
	}
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return err
		}
		defer closeKeeping(f)
		if err := trace.Start(f); err != nil {
			return err
		}
		defer trace.Stop()
	}

	ids := experiments.RegistryOrder
	if fig != "all" {
		ids = strings.Split(fig, ",")
	}
	for _, id := range ids {
		start := time.Now()
		tables, err := experiments.Run(strings.TrimSpace(id), cfg)
		if err != nil {
			return err
		}
		for _, t := range tables {
			t.Fprint(os.Stdout)
		}
		fmt.Printf("(%s completed in %.1fs)\n\n", id, time.Since(start).Seconds())
	}

	if memProfile != "" {
		runtime.GC() // materialize the live heap before snapshotting
		// runtime/pprof's proto writer swallows downstream write errors
		// (the gzip close error never reaches WriteHeapProfile's return),
		// so snapshot to memory and do the one checked write ourselves.
		var buf bytes.Buffer
		if err := pprof.WriteHeapProfile(&buf); err != nil {
			return err
		}
		if err := os.WriteFile(memProfile, buf.Bytes(), 0o644); err != nil {
			return err
		}
	}
	return nil
}
