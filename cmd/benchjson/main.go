// Command benchjson converts `go test -bench` text output (read from stdin)
// into a machine-readable JSON document, so CI can archive the repo's
// performance trajectory as build artifacts (see .github/workflows/ci.yml,
// which emits BENCH_PR2.json).
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | go run ./cmd/benchjson > bench.json
//
// Each benchmark line like
//
//	BenchmarkVerPart-8   	     100	  12345 ns/op	  678 B/op	  9 allocs/op
//
// becomes {"name": "VerPart", "procs": 8, "iterations": 100,
// "metrics": {"ns/op": 12345, "B/op": 678, "allocs/op": 9}}; custom
// b.ReportMetric units (e.g. "tlost") are carried through unchanged.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the document benchjson emits.
type Report struct {
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	CPU        string      `json:"cpu,omitempty"`
	Package    string      `json:"pkg,omitempty"`
	Time       string      `json:"time"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	report := Report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Time:      time.Now().UTC().Format(time.RFC3339),
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "cpu:"):
			report.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			report.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		}
		if b, ok := parseLine(line); ok {
			report.Benchmarks = append(report.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses one "BenchmarkX-8  N  v unit  v unit ..." line.
func parseLine(line string) (Benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Benchmark{}, false
	}
	fields := strings.Fields(line)
	// Name, iterations, then (value, unit) pairs: at least 4 fields.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	b := Benchmark{Metrics: map[string]float64{}}
	b.Name = strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(b.Name, "-"); i >= 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], procs
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
