package main

import "testing"

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkVerPart-8   \t     100\t     12345 ns/op\t     678 B/op\t       9 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if b.Name != "VerPart" || b.Procs != 8 || b.Iterations != 100 {
		t.Errorf("header = %q/%d/%d", b.Name, b.Procs, b.Iterations)
	}
	want := map[string]float64{"ns/op": 12345, "B/op": 678, "allocs/op": 9}
	for unit, v := range want {
		if b.Metrics[unit] != v {
			t.Errorf("metric %s = %v, want %v", unit, b.Metrics[unit], v)
		}
	}
}

func TestParseLineCustomMetricAndSubBench(t *testing.T) {
	b, ok := parseLine("BenchmarkAblationRefine/on-4 \t 2\t 552836641 ns/op\t 0.03608 tlost\t 162754764 B/op\t 1209338 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if b.Name != "AblationRefine/on" || b.Procs != 4 {
		t.Errorf("header = %q/%d", b.Name, b.Procs)
	}
	if b.Metrics["tlost"] != 0.03608 {
		t.Errorf("tlost = %v", b.Metrics["tlost"])
	}
}

func TestParseLineRejectsNonBench(t *testing.T) {
	for _, line := range []string{"PASS", "ok  \tdisasso\t1.2s", "goos: linux", ""} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parsed non-benchmark line %q", line)
		}
	}
}
