package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunQuest(t *testing.T) {
	out := filepath.Join(t.TempDir(), "quest.txt")
	if err := run("quest", 200, 50, 5, 1, 3, out, false); err != nil {
		t.Fatalf("quest: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 200 {
		t.Errorf("generated %d lines, want 200", len(lines))
	}
}

func TestRunStandIns(t *testing.T) {
	for _, typ := range []string{"pos", "wv1", "wv2"} {
		out := filepath.Join(t.TempDir(), typ+".txt")
		if err := run(typ, 0, 0, 0, 400, 1, out, false); err != nil {
			t.Fatalf("%s: %v", typ, err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		if len(strings.TrimSpace(string(data))) == 0 {
			t.Errorf("%s output empty", typ)
		}
	}
}

func TestRunUnknownType(t *testing.T) {
	if err := run("bogus", 10, 10, 2, 1, 1, "", false); err == nil {
		t.Error("unknown type accepted")
	}
}

func TestRunBadQuestConfig(t *testing.T) {
	if err := run("quest", 10, 0, 5, 1, 1, filepath.Join(t.TempDir(), "x.txt"), false); err == nil {
		t.Error("domain 0 accepted")
	}
}

func TestRunStats(t *testing.T) {
	out := filepath.Join(t.TempDir(), "stats.txt")
	if err := run("quest", 300, 60, 5, 1, 2, out, true); err != nil {
		t.Fatalf("stats: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	if !strings.Contains(text, "record lengths") || !strings.Contains(text, "term supports") {
		t.Errorf("stats output missing histograms:\n%s", text)
	}
}
