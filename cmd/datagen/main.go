// Command datagen generates the transactional datasets the experiments use:
// IBM Quest market-basket synthetic data, or the POS / WV1 / WV2 stand-ins
// matching the published statistics of the paper's Figure 6.
//
// Usage:
//
//	datagen -type quest -n 100000 -domain 5000 -avglen 10 > synthetic.txt
//	datagen -type pos -scale 10 > pos.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"disasso"
	"disasso/internal/dataset"
	"disasso/internal/realdata"
)

func main() {
	var (
		typ    = flag.String("type", "quest", "dataset type: quest, pos, wv1, wv2")
		n      = flag.Int("n", 100_000, "records to generate (quest)")
		domain = flag.Int("domain", 5_000, "domain size (quest)")
		avgLen = flag.Float64("avglen", 10, "average record length (quest)")
		scale  = flag.Int("scale", 1, "divide the stand-in dataset size (pos/wv1/wv2)")
		seed   = flag.Uint64("seed", 1, "PRNG seed")
		out    = flag.String("out", "", "output file (default stdout)")
		stats  = flag.Bool("stats", false, "print record-length and support histograms instead of records")
	)
	flag.Parse()
	if err := run(*typ, *n, *domain, *avgLen, *scale, *seed, *out, *stats); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(typ string, n, domain int, avgLen float64, scale int, seed uint64, out string, stats bool) (retErr error) {
	var d *dataset.Dataset
	switch strings.ToLower(typ) {
	case "quest":
		cfg := disasso.DefaultQuestConfig()
		cfg.NumTransactions = n
		cfg.DomainSize = domain
		cfg.AvgTransLen = avgLen
		cfg.Seed = seed
		var err error
		d, err = disasso.GenerateQuest(cfg)
		if err != nil {
			return err
		}
	case "pos", "wv1", "wv2":
		var spec realdata.Spec
		switch strings.ToLower(typ) {
		case "pos":
			spec = realdata.POS
		case "wv1":
			spec = realdata.WV1
		default:
			spec = realdata.WV2
		}
		if seed != 1 {
			spec.Seed = seed
		}
		d = spec.Scaled(scale).Generate()
	default:
		return fmt.Errorf("unknown type %q (quest, pos, wv1, wv2)", typ)
	}

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		w = f
		// A full disk often surfaces only at close time; swallowing it here
		// would exit 0 with truncated output (the PR 4 -reconstruct bug).
		defer func() {
			if cerr := f.Close(); cerr != nil && retErr == nil {
				retErr = cerr
			}
		}()
	}
	if stats {
		st := d.ComputeStats()
		fmt.Fprintf(w, "records=%d terms=%d max=%d avg=%.2f\n",
			st.NumRecords, st.DomainSize, st.MaxRecord, st.AvgRecord)
		dataset.NewHistogram(d.RecordLengths(), 8).Fprint(w, "record lengths")
		dataset.NewHistogram(d.SupportValues(), 8).Fprint(w, "term supports")
		return nil
	}
	return disasso.WriteIDs(w, d)
}
