// Command disassod serves published disassociated datasets over HTTP — the
// long-running analyst-facing counterpart of the one-shot disasso tool. A
// publisher uploads a dataset once; the daemon anonymizes it (in memory or
// through the bounded-memory streaming engine), builds the inverted query
// index, and then serves itemset support estimates, reconstruction samples,
// utility metrics and publication stats to any number of concurrent
// clients.
//
// Usage:
//
//	disassod -addr :8080
//
// Endpoints (see the repository README for an example curl session):
//
//	GET    /healthz
//	GET    /v1/datasets
//	POST   /v1/datasets/{name}?k=5&m=2[&shardrecords=N][&stream=1&membudget=256M]
//	DELETE /v1/datasets/{name}
//	POST   /v1/datasets/{name}/append         body: records, one per line
//	POST   /v1/datasets/{name}/remove         body: records, one per line
//	GET    /v1/datasets/{name}/stats
//	POST   /v1/datasets/{name}/support        {"itemsets": [[3,17],[42]]}
//	GET    /v1/datasets/{name}/support?itemset=3,17
//	POST   /v1/datasets/{name}/reconstruct    {"samples": 2, "seed": 7}
//	GET    /v1/datasets/{name}/metrics
//
// Append and remove are incremental delta republishes: each produces a new
// immutable snapshot version whose bytes are identical to a from-scratch
// publish of the updated records, but only the shards the delta touches are
// re-anonymized (publish with shardrecords > 0 to enable sharding).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"disasso"
	"disasso/internal/dataset"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		maxBody  = flag.String("max-body", "", "request body cap, bytes with optional K/M/G suffix (default 64M)")
		maxRecon = flag.Int("max-reconstructions", 0, "per-request reconstruction sample cap (default 16)")
		tmpDir   = flag.String("tmpdir", "", "directory for streaming spill files (default system temp)")
		supCache = flag.Int("support-cache", 0, "per-snapshot support cache entries (default 8192, negative disables)")
		dataDir  = flag.String("data-dir", "", "directory for persistent snapshot files; publications survive restarts (default in-memory only)")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *addr, *maxBody, *maxRecon, *supCache, *tmpDir, *dataDir, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "disassod:", err)
		os.Exit(1)
	}
}

// run starts the HTTP service and blocks until the context is canceled or
// the listener fails; progress goes to logw. With a data directory, the
// registry is recovered from its snapshot files before the listener opens —
// O(files), no re-anonymization — so the first request already sees every
// surviving dataset.
func run(ctx context.Context, addr, maxBody string, maxRecon, supCache int, tmpDir, dataDir string, logw io.Writer) error {
	bodyCap, err := dataset.ParseByteSize(maxBody)
	if err != nil {
		return err
	}
	logger := log.New(logw, "disassod: ", log.LstdFlags)
	if dataDir != "" {
		if err := os.MkdirAll(dataDir, 0o755); err != nil {
			return err
		}
	}
	handler := disasso.NewServer(disasso.ServerOptions{
		MaxBodyBytes:        bodyCap,
		MaxReconstructions:  maxRecon,
		TempDir:             tmpDir,
		SupportCacheEntries: supCache,
		DataDir:             dataDir,
		Logf:                logger.Printf,
	})
	if dataDir != "" {
		rep, err := handler.Recover()
		if err != nil {
			return fmt.Errorf("recovering %s: %w", dataDir, err)
		}
		logger.Printf("recovered %d dataset(s) from %s", len(rep.Loaded), dataDir)
		for _, name := range rep.Loaded {
			logger.Printf("recovered dataset %q", name)
		}
		for _, sk := range rep.Skipped {
			logger.Printf("skipped %s: %s", sk.File, sk.Reason)
		}
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ErrorLog:          logger,
	}
	logger.Printf("serving on %s", ln.Addr())

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
	}
	logger.Printf("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-done; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
