package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe log sink for polling the serve address.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var addrRe = regexp.MustCompile(`serving on (\S+)`)

func TestRunServesAndShutsDown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	logs := &syncBuffer{}
	done := make(chan error, 1)
	go func() { done <- run(ctx, "127.0.0.1:0", "1M", 2, 0, t.TempDir(), "", logs) }()

	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server never logged its address; logs: %s", logs.String())
		}
		if m := addrRe.FindStringSubmatch(logs.String()); m != nil {
			base = "http://" + m[1]
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz: status %d body %s", resp.StatusCode, body)
	}

	// A tiny publish/query round trip through the real TCP listener.
	resp, err = http.Post(base+"/v1/datasets/toy?k=2&m=2", "text/plain",
		strings.NewReader("1 2\n1 2\n1 3\n1 3\n2 3\n2 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("publish status %d", resp.StatusCode)
	}
	resp, err = http.Get(base + "/v1/datasets/toy/support?itemset=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "\"lower\"") {
		t.Fatalf("support: status %d body %s", resp.StatusCode, body)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after shutdown", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not return after context cancellation")
	}
}

func TestRunBadConfig(t *testing.T) {
	if err := run(context.Background(), "127.0.0.1:0", "lots", 0, 0, "", "", io.Discard); err == nil {
		t.Error("bad -max-body accepted")
	}
	if err := run(context.Background(), "not-an-address:-1", "", 0, 0, "", "", io.Discard); err == nil {
		t.Error("bad -addr accepted")
	}
}
