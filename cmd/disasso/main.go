// Command disasso anonymizes a transactional dataset by disassociation.
//
// The input is a text file with one record per line, terms as
// whitespace-separated integer IDs (see -names for string terms). The output
// is the published disassociated form as JSON, re-loadable by this tool for
// verification, or a sampled reconstruction as text.
//
// Usage:
//
//	disasso -in data.txt -k 5 -m 2 -out anonymized.json
//	disasso -in data.txt -reconstruct 3 -out samples.txt
//	disasso -verify anonymized.json -in data.txt
//	disasso -in huge.txt -stream -mem-budget 512M -binary -out anonymized.bin
//	disasso -in data.txt -k 5 -safe -out anonymized.json
//	disasso -verify anonymized.json -in data.txt -breaches
//
// With -stream the input is anonymized by the sharded streaming engine in
// bounded memory (see -mem-budget), spilling shards to temp files; the
// published bytes are identical to the in-memory path at equal options.
//
// With -breaches the output is a cover-problem breach audit of the
// publication (either the one just produced, or the -verify file) as JSON,
// and the exit status reports whether it is breach-free; -safe publishes
// with safe disassociation, which repairs every such breach.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"disasso"
	"disasso/internal/dataset"
)

func main() {
	var (
		in          = flag.String("in", "", "input dataset (one record per line)")
		out         = flag.String("out", "", "output file (default stdout)")
		names       = flag.Bool("names", false, "terms are strings, not integer IDs")
		k           = flag.Int("k", 5, "k of the k^m-anonymity guarantee")
		m           = flag.Int("m", 2, "m of the k^m-anonymity guarantee (adversary knowledge)")
		maxCluster  = flag.Int("maxcluster", 0, "maximum cluster size (0 = default)")
		noRefine    = flag.Bool("no-refine", false, "skip the REFINE step (no joint clusters)")
		parallel    = flag.Int("parallel", 0, "vertical-partitioning workers (0 = all cores)")
		seed        = flag.Uint64("seed", 1, "PRNG seed for subrecord shuffling")
		reconstruct = flag.Int("reconstruct", 0, "instead of JSON, emit N reconstructed datasets as text")
		verify      = flag.String("verify", "", "verify a previously written JSON file against -in and exit")
		stats       = flag.Bool("stats", false, "print dataset statistics and exit")
		audit       = flag.Int("audit", 0, "after anonymizing, audit the guarantee with N sampled adversaries")
		safe        = flag.Bool("safe", false, "repair cover-problem breaches at publish time (safe disassociation)")
		breaches    = flag.Bool("breaches", false, "emit a cover-problem breach audit as JSON; exit nonzero if breached")
		binaryOut   = flag.Bool("binary", false, "write the compact binary format instead of JSON (and expect it with -verify)")
		stream      = flag.Bool("stream", false, "anonymize with the sharded streaming engine in bounded memory")
		memBudget   = flag.String("mem-budget", "", "streaming memory budget, bytes with optional K/M/G suffix (default 256M)")
		shardRecs   = flag.Int("shard-records", 0, "shard cut in records — MergeUndersized/REFINE run per shard; applies to both streaming and in-memory runs (0 = one global shard, or derive from -mem-budget with -stream)")
		tmpDir      = flag.String("tmpdir", "", "directory for streaming spill files (default system temp)")
	)
	flag.Parse()
	cfg := runConfig{
		in: *in, out: *out, names: *names, k: *k, m: *m, maxCluster: *maxCluster,
		noRefine: *noRefine, parallel: *parallel, seed: *seed, reconstruct: *reconstruct,
		verify: *verify, stats: *stats, audit: *audit, safe: *safe, breaches: *breaches,
		binaryOut: *binaryOut, stream: *stream, memBudget: *memBudget, shardRecs: *shardRecs,
		tmpDir: *tmpDir,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "disasso:", err)
		os.Exit(1)
	}
}

// runConfig carries the parsed flag set.
type runConfig struct {
	in, out     string
	names       bool
	k, m        int
	maxCluster  int
	noRefine    bool
	parallel    int
	seed        uint64
	reconstruct int
	verify      string
	stats       bool
	audit       int
	safe        bool
	breaches    bool
	binaryOut   bool
	stream      bool
	memBudget   string
	shardRecs   int
	tmpDir      string
}

// parseBytes parses a byte count with an optional K/M/G (or KiB-style)
// suffix. It rejects values whose suffix multiplication would overflow
// int64 — "9223372036854775807K" used to wrap to a negative budget and be
// accepted silently.
func parseBytes(s string) (int64, error) {
	return dataset.ParseByteSize(s)
}

// openOutput resolves -out: the returned close function's error must be
// checked — on a full disk the failure often only surfaces at close time.
func openOutput(path string) (io.Writer, func() error, error) {
	if path == "" {
		return os.Stdout, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

func run(cfg runConfig) error {
	if cfg.in == "" {
		return fmt.Errorf("-in is required")
	}
	f, err := os.Open(cfg.in)
	if err != nil {
		return err
	}
	defer f.Close()

	if cfg.stream {
		if cfg.names || cfg.stats || cfg.verify != "" || cfg.reconstruct > 0 || cfg.audit > 0 || cfg.breaches {
			return fmt.Errorf("-stream supports only anonymization of integer-ID inputs (no -names/-stats/-verify/-reconstruct/-audit/-breaches)")
		}
		budget, err := parseBytes(cfg.memBudget)
		if err != nil {
			return err
		}
		w, closeOut, err := openOutput(cfg.out)
		if err != nil {
			return err
		}
		st, err := disasso.AnonymizeStream(f, w, disasso.StreamOptions{
			Core: disasso.Options{
				K: cfg.k, M: cfg.m, MaxClusterSize: cfg.maxCluster, MaxShardRecords: cfg.shardRecs,
				DisableRefine: cfg.noRefine, Parallel: cfg.parallel, Seed: cfg.seed,
				SafeDisassociation: cfg.safe,
			},
			MemoryBudget: budget,
			TempDir:      cfg.tmpDir,
			JSON:         !cfg.binaryOut,
		})
		if cerr := closeOut(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "stream: %d records, %d terms, %d shards (cut %d records), %d clusters, spilled=%v\n",
			st.Records, st.Terms, st.Shards, st.ShardRecords, st.Clusters, st.Spilled)
		return nil
	}

	var d *disasso.Dataset
	dict := disasso.NewDictionary()
	if cfg.names {
		d, err = disasso.ReadNames(f, dict)
	} else {
		d, err = disasso.ReadIDs(f)
	}
	if err != nil {
		return err
	}

	w, closeOut, err := openOutput(cfg.out)
	if err != nil {
		return err
	}
	err = emit(cfg, d, dict, w)
	if cerr := closeOut(); err == nil {
		err = cerr
	}
	return err
}

// emit performs the requested action, writing results to w. Every write
// error propagates: a broken pipe or full disk must fail the run, not exit
// 0 with truncated output.
func emit(cfg runConfig, d *disasso.Dataset, dict *disasso.Dictionary, w io.Writer) error {
	if cfg.stats {
		st := d.ComputeStats()
		_, err := fmt.Fprintf(w, "records: %d\nterms: %d\nmax record: %d\navg record: %.2f\n",
			st.NumRecords, st.DomainSize, st.MaxRecord, st.AvgRecord)
		return err
	}

	if cfg.verify != "" {
		vf, err := os.Open(cfg.verify)
		if err != nil {
			return err
		}
		defer vf.Close()
		var a *disasso.Anonymized
		if cfg.binaryOut {
			a, err = disasso.ReadBinary(vf)
		} else {
			a, err = disasso.ReadJSON(vf)
		}
		if err != nil {
			return err
		}
		if err := disasso.VerifyAgainstOriginal(a, d); err != nil {
			return err
		}
		if cfg.breaches {
			return writeBreachReport(w, a)
		}
		_, err = fmt.Fprintf(w, "OK: %s is %d^%d-anonymous and consistent with %s\n", cfg.verify, a.K, a.M, cfg.in)
		return err
	}

	a, err := disasso.Anonymize(d, disasso.Options{
		K: cfg.k, M: cfg.m, MaxClusterSize: cfg.maxCluster, MaxShardRecords: cfg.shardRecs,
		DisableRefine: cfg.noRefine, Parallel: cfg.parallel, Seed: cfg.seed,
		SafeDisassociation: cfg.safe,
	})
	if err != nil {
		return err
	}
	if err := disasso.Verify(a); err != nil {
		return fmt.Errorf("internal error — output failed verification: %w", err)
	}
	if cfg.audit > 0 {
		if err := disasso.AuditGuarantee(a, d, cfg.m, cfg.k, cfg.audit, cfg.seed); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "audit: %d sampled adversaries, guarantee holds\n", cfg.audit)
	}

	if cfg.breaches {
		return writeBreachReport(w, a)
	}

	if cfg.reconstruct > 0 {
		var names *disasso.Dictionary
		if cfg.names {
			names = dict
		}
		return writeReconstructions(w, disasso.ReconstructMany(a, cfg.reconstruct, cfg.seed), names)
	}
	if cfg.binaryOut {
		return disasso.WriteBinary(w, a)
	}
	return disasso.WriteJSON(w, a)
}

// writeBreachReport emits the cover-problem audit of a publication as
// indented JSON, then fails the run when the publication is breached — the
// report is on stdout either way, so an operator sees what broke, and scripts
// get the verdict from the exit status.
func writeBreachReport(w io.Writer, a *disasso.Anonymized) error {
	rep := disasso.AuditBreaches(a)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if !rep.Clean() {
		return fmt.Errorf("%d of %d clusters breached (worst association probability %.3f > 1/%d); republish with -safe",
			rep.BreachedClusters, rep.Clusters, rep.MaxProbability, rep.K)
	}
	fmt.Fprintf(os.Stderr, "breach audit: %d clusters, no association above 1/%d\n", rep.Clusters, rep.K)
	return nil
}

// writeReconstructions emits the sampled datasets separated by literal "%%"
// lines (the multi-dataset framing -reconstruct documents), through dict
// when non-nil. The first write error — separator lines included — aborts
// and propagates.
func writeReconstructions(w io.Writer, datasets []*disasso.Dataset, dict *disasso.Dictionary) error {
	for i, r := range datasets {
		if i > 0 {
			if _, err := fmt.Fprintln(w, "%%"); err != nil {
				return err
			}
		}
		var err error
		if dict != nil {
			err = disasso.WriteNames(w, r, dict)
		} else {
			err = disasso.WriteIDs(w, r)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
