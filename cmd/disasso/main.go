// Command disasso anonymizes a transactional dataset by disassociation.
//
// The input is a text file with one record per line, terms as
// whitespace-separated integer IDs (see -names for string terms). The output
// is the published disassociated form as JSON, re-loadable by this tool for
// verification, or a sampled reconstruction as text.
//
// Usage:
//
//	disasso -in data.txt -k 5 -m 2 -out anonymized.json
//	disasso -in data.txt -reconstruct 3 -out samples.txt
//	disasso -verify anonymized.json -in data.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"disasso"
)

func main() {
	var (
		in          = flag.String("in", "", "input dataset (one record per line)")
		out         = flag.String("out", "", "output file (default stdout)")
		names       = flag.Bool("names", false, "terms are strings, not integer IDs")
		k           = flag.Int("k", 5, "k of the k^m-anonymity guarantee")
		m           = flag.Int("m", 2, "m of the k^m-anonymity guarantee (adversary knowledge)")
		maxCluster  = flag.Int("maxcluster", 0, "maximum cluster size (0 = default)")
		noRefine    = flag.Bool("no-refine", false, "skip the REFINE step (no joint clusters)")
		parallel    = flag.Int("parallel", 0, "vertical-partitioning workers (0 = all cores)")
		seed        = flag.Uint64("seed", 1, "PRNG seed for subrecord shuffling")
		reconstruct = flag.Int("reconstruct", 0, "instead of JSON, emit N reconstructed datasets as text")
		verify      = flag.String("verify", "", "verify a previously written JSON file against -in and exit")
		stats       = flag.Bool("stats", false, "print dataset statistics and exit")
		audit       = flag.Int("audit", 0, "after anonymizing, audit the guarantee with N sampled adversaries")
		binaryOut   = flag.Bool("binary", false, "write the compact binary format instead of JSON (and expect it with -verify)")
	)
	flag.Parse()
	if err := run(*in, *out, *names, *k, *m, *maxCluster, *noRefine, *parallel, *seed, *reconstruct, *verify, *stats, *audit, *binaryOut); err != nil {
		fmt.Fprintln(os.Stderr, "disasso:", err)
		os.Exit(1)
	}
}

func run(in, out string, names bool, k, m, maxCluster int, noRefine bool, parallel int, seed uint64, nReconstruct int, verifyPath string, stats bool, audit int, binaryOut bool) error {
	if in == "" {
		return fmt.Errorf("-in is required")
	}
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()

	var d *disasso.Dataset
	dict := disasso.NewDictionary()
	if names {
		d, err = disasso.ReadNames(f, dict)
	} else {
		d, err = disasso.ReadIDs(f)
	}
	if err != nil {
		return err
	}

	w := os.Stdout
	if out != "" {
		w, err = os.Create(out)
		if err != nil {
			return err
		}
		defer w.Close()
	}

	if stats {
		st := d.ComputeStats()
		fmt.Fprintf(w, "records: %d\nterms: %d\nmax record: %d\navg record: %.2f\n",
			st.NumRecords, st.DomainSize, st.MaxRecord, st.AvgRecord)
		return nil
	}

	if verifyPath != "" {
		vf, err := os.Open(verifyPath)
		if err != nil {
			return err
		}
		defer vf.Close()
		var a *disasso.Anonymized
		if binaryOut {
			a, err = disasso.ReadBinary(vf)
		} else {
			a, err = disasso.ReadJSON(vf)
		}
		if err != nil {
			return err
		}
		if err := disasso.VerifyAgainstOriginal(a, d); err != nil {
			return err
		}
		fmt.Fprintf(w, "OK: %s is %d^%d-anonymous and consistent with %s\n", verifyPath, a.K, a.M, in)
		return nil
	}

	a, err := disasso.Anonymize(d, disasso.Options{
		K: k, M: m, MaxClusterSize: maxCluster,
		DisableRefine: noRefine, Parallel: parallel, Seed: seed,
	})
	if err != nil {
		return err
	}
	if err := disasso.Verify(a); err != nil {
		return fmt.Errorf("internal error — output failed verification: %w", err)
	}
	if audit > 0 {
		if err := disasso.AuditGuarantee(a, d, m, k, audit, seed); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "audit: %d sampled adversaries, guarantee holds\n", audit)
	}

	if nReconstruct > 0 {
		for i, r := range disasso.ReconstructMany(a, nReconstruct, seed) {
			if i > 0 {
				fmt.Fprintln(w, "%%") // dataset separator
			}
			if names {
				if err := disasso.WriteNames(w, r, dict); err != nil {
					return err
				}
			} else if err := disasso.WriteIDs(w, r); err != nil {
				return err
			}
		}
		return nil
	}
	if binaryOut {
		return disasso.WriteBinary(w, a)
	}
	return disasso.WriteJSON(w, a)
}
