package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeInput creates a small dataset file.
func writeInput(t *testing.T, dir, content string) string {
	t.Helper()
	path := filepath.Join(dir, "in.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const toyData = `1 2 3
1 2
1 2 3
2 3
1 3
1 2 3
2 3
1 2
1 3
1 2 3
`

func TestRunAnonymizeAndVerify(t *testing.T) {
	dir := t.TempDir()
	in := writeInput(t, dir, toyData)
	out := filepath.Join(dir, "anon.json")

	if err := run(in, out, false, 3, 2, 0, false, 1, 1, 0, "", false, 0, false); err != nil {
		t.Fatalf("anonymize: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"K\": 3") {
		t.Errorf("output JSON missing parameters: %s", data[:min(len(data), 120)])
	}

	verifyOut := filepath.Join(dir, "verify.txt")
	if err := run(in, verifyOut, false, 3, 2, 0, false, 1, 1, 0, out, false, 0, false); err != nil {
		t.Fatalf("verify: %v", err)
	}
	msg, _ := os.ReadFile(verifyOut)
	if !strings.Contains(string(msg), "OK") {
		t.Errorf("verify output: %s", msg)
	}
}

func TestRunReconstruct(t *testing.T) {
	dir := t.TempDir()
	in := writeInput(t, dir, toyData)
	out := filepath.Join(dir, "recon.txt")
	if err := run(in, out, false, 3, 2, 0, false, 1, 1, 2, "", false, 0, false); err != nil {
		t.Fatalf("reconstruct: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	if !strings.Contains(text, "%%") {
		t.Error("missing dataset separator between reconstructions")
	}
	lines := strings.Split(strings.TrimSpace(text), "\n")
	// 10 records × 2 reconstructions + 1 separator.
	if len(lines) != 21 {
		t.Errorf("reconstruction output has %d lines, want 21", len(lines))
	}
}

func TestRunStats(t *testing.T) {
	dir := t.TempDir()
	in := writeInput(t, dir, toyData)
	out := filepath.Join(dir, "stats.txt")
	if err := run(in, out, false, 3, 2, 0, false, 1, 1, 0, "", true, 0, false); err != nil {
		t.Fatalf("stats: %v", err)
	}
	data, _ := os.ReadFile(out)
	if !strings.Contains(string(data), "records: 10") {
		t.Errorf("stats output: %s", data)
	}
}

func TestRunAudit(t *testing.T) {
	dir := t.TempDir()
	in := writeInput(t, dir, toyData)
	out := filepath.Join(dir, "anon.json")
	if err := run(in, out, false, 3, 2, 0, false, 1, 1, 0, "", false, 50, false); err != nil {
		t.Fatalf("audit: %v", err)
	}
}

func TestRunBinaryFormat(t *testing.T) {
	dir := t.TempDir()
	in := writeInput(t, dir, toyData)
	out := filepath.Join(dir, "anon.bin")
	if err := run(in, out, false, 3, 2, 0, false, 1, 1, 0, "", false, 0, true); err != nil {
		t.Fatalf("binary anonymize: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "DSA1") {
		t.Errorf("binary output missing magic: %q", data[:4])
	}
	verifyOut := filepath.Join(dir, "verify.txt")
	if err := run(in, verifyOut, false, 3, 2, 0, false, 1, 1, 0, out, false, 0, true); err != nil {
		t.Fatalf("binary verify: %v", err)
	}
	msg, _ := os.ReadFile(verifyOut)
	if !strings.Contains(string(msg), "OK") {
		t.Errorf("binary verify output: %s", msg)
	}
}

func TestRunNames(t *testing.T) {
	dir := t.TempDir()
	in := writeInput(t, dir, "apple banana\napple banana\napple cherry\napple cherry\nbanana cherry\nbanana cherry\n")
	out := filepath.Join(dir, "recon.txt")
	if err := run(in, out, true, 2, 2, 0, false, 1, 1, 1, "", false, 0, false); err != nil {
		t.Fatalf("names reconstruct: %v", err)
	}
	data, _ := os.ReadFile(out)
	if !strings.Contains(string(data), "apple") {
		t.Errorf("names output lost the dictionary: %s", data)
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	if err := run("", "", false, 3, 2, 0, false, 1, 1, 0, "", false, 0, false); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run(filepath.Join(dir, "missing.txt"), "", false, 3, 2, 0, false, 1, 1, 0, "", false, 0, false); err == nil {
		t.Error("nonexistent input accepted")
	}
	in := writeInput(t, dir, toyData)
	if err := run(in, "", false, 1, 2, 0, false, 1, 1, 0, "", false, 0, false); err == nil {
		t.Error("k=1 accepted")
	}
	if err := run(in, "", false, 3, 2, 0, false, 1, 1, 0, filepath.Join(dir, "missing.json"), false, 0, false); err == nil {
		t.Error("nonexistent verify file accepted")
	}
}
