package main

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"disasso"
)

// writeInput creates a small dataset file.
func writeInput(t *testing.T, dir, content string) string {
	t.Helper()
	path := filepath.Join(dir, "in.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const toyData = `1 2 3
1 2
1 2 3
2 3
1 3
1 2 3
2 3
1 2
1 3
1 2 3
`

func TestRunAnonymizeAndVerify(t *testing.T) {
	dir := t.TempDir()
	in := writeInput(t, dir, toyData)
	out := filepath.Join(dir, "anon.json")

	if err := run(runConfig{in: in, out: out, k: 3, m: 2, parallel: 1, seed: 1}); err != nil {
		t.Fatalf("anonymize: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"K\": 3") {
		t.Errorf("output JSON missing parameters: %s", data[:min(len(data), 120)])
	}

	verifyOut := filepath.Join(dir, "verify.txt")
	if err := run(runConfig{in: in, out: verifyOut, k: 3, m: 2, parallel: 1, seed: 1, verify: out}); err != nil {
		t.Fatalf("verify: %v", err)
	}
	msg, _ := os.ReadFile(verifyOut)
	if !strings.Contains(string(msg), "OK") {
		t.Errorf("verify output: %s", msg)
	}
}

func TestRunReconstruct(t *testing.T) {
	dir := t.TempDir()
	in := writeInput(t, dir, toyData)
	out := filepath.Join(dir, "recon.txt")
	if err := run(runConfig{in: in, out: out, k: 3, m: 2, parallel: 1, seed: 1, reconstruct: 2}); err != nil {
		t.Fatalf("reconstruct: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	if !strings.Contains(text, "%%") {
		t.Error("missing dataset separator between reconstructions")
	}
	lines := strings.Split(strings.TrimSpace(text), "\n")
	// 10 records × 2 reconstructions + 1 separator.
	if len(lines) != 21 {
		t.Errorf("reconstruction output has %d lines, want 21", len(lines))
	}
}

func TestRunStats(t *testing.T) {
	dir := t.TempDir()
	in := writeInput(t, dir, toyData)
	out := filepath.Join(dir, "stats.txt")
	if err := run(runConfig{in: in, out: out, k: 3, m: 2, parallel: 1, seed: 1, stats: true}); err != nil {
		t.Fatalf("stats: %v", err)
	}
	data, _ := os.ReadFile(out)
	if !strings.Contains(string(data), "records: 10") {
		t.Errorf("stats output: %s", data)
	}
}

func TestRunAudit(t *testing.T) {
	dir := t.TempDir()
	in := writeInput(t, dir, toyData)
	out := filepath.Join(dir, "anon.json")
	if err := run(runConfig{in: in, out: out, k: 3, m: 2, parallel: 1, seed: 1, audit: 50}); err != nil {
		t.Fatalf("audit: %v", err)
	}
}

func TestRunBinaryFormat(t *testing.T) {
	dir := t.TempDir()
	in := writeInput(t, dir, toyData)
	out := filepath.Join(dir, "anon.bin")
	if err := run(runConfig{in: in, out: out, k: 3, m: 2, parallel: 1, seed: 1, binaryOut: true}); err != nil {
		t.Fatalf("binary anonymize: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "DSA1") {
		t.Errorf("binary output missing magic: %q", data[:4])
	}
	verifyOut := filepath.Join(dir, "verify.txt")
	if err := run(runConfig{in: in, out: verifyOut, k: 3, m: 2, parallel: 1, seed: 1, verify: out, binaryOut: true}); err != nil {
		t.Fatalf("binary verify: %v", err)
	}
	msg, _ := os.ReadFile(verifyOut)
	if !strings.Contains(string(msg), "OK") {
		t.Errorf("binary verify output: %s", msg)
	}
}

func TestRunNames(t *testing.T) {
	dir := t.TempDir()
	in := writeInput(t, dir, "apple banana\napple banana\napple cherry\napple cherry\nbanana cherry\nbanana cherry\n")
	out := filepath.Join(dir, "recon.txt")
	if err := run(runConfig{in: in, out: out, names: true, k: 2, m: 2, parallel: 1, seed: 1, reconstruct: 1}); err != nil {
		t.Fatalf("names reconstruct: %v", err)
	}
	data, _ := os.ReadFile(out)
	if !strings.Contains(string(data), "apple") {
		t.Errorf("names output lost the dictionary: %s", data)
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	if err := run(runConfig{k: 3, m: 2, parallel: 1, seed: 1}); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run(runConfig{in: filepath.Join(dir, "missing.txt"), k: 3, m: 2, parallel: 1, seed: 1}); err == nil {
		t.Error("nonexistent input accepted")
	}
	in := writeInput(t, dir, toyData)
	if err := run(runConfig{in: in, k: 1, m: 2, parallel: 1, seed: 1}); err == nil {
		t.Error("k=1 accepted")
	}
	if err := run(runConfig{in: in, k: 3, m: 2, parallel: 1, seed: 1, verify: filepath.Join(dir, "missing.json")}); err == nil {
		t.Error("nonexistent verify file accepted")
	}
}

// denseData generates a small dense dataset whose plain publication is known
// to carry cover-problem breaches (same shape as the internal/breach dense
// property config).
func denseData(t *testing.T, dir string) string {
	t.Helper()
	rng := rand.New(rand.NewPCG(505, 0xDA7A))
	var b strings.Builder
	for i := 0; i < 40; i++ {
		length := 1 + rng.IntN(6)
		for j := 0; j < length; j++ {
			u := rng.Float64()
			fmt.Fprintf(&b, "%d ", int(8*u*u))
		}
		b.WriteByte('\n')
	}
	return writeInput(t, dir, b.String())
}

func TestRunBreachAudit(t *testing.T) {
	dir := t.TempDir()
	in := denseData(t, dir)

	// The plain publication breaches: the report lands on -out, the run fails.
	out := filepath.Join(dir, "plain-audit.json")
	err := run(runConfig{in: in, out: out, k: 2, m: 2, parallel: 1, seed: 1, breaches: true})
	if err == nil || !strings.Contains(err.Error(), "-safe") {
		t.Fatalf("breached publication audited clean (err = %v)", err)
	}
	data, _ := os.ReadFile(out)
	if !strings.Contains(string(data), `"learned"`) {
		t.Errorf("plain audit report has no findings: %s", data)
	}

	// With -safe the same input publishes breach-free and the audit passes.
	safeOut := filepath.Join(dir, "safe-audit.json")
	if err := run(runConfig{in: in, out: safeOut, k: 2, m: 2, parallel: 1, seed: 1, safe: true, breaches: true}); err != nil {
		t.Fatalf("safe publication still breached: %v", err)
	}
	data, _ = os.ReadFile(safeOut)
	if !strings.Contains(string(data), `"breachedClusters": 0`) {
		t.Errorf("safe audit report: %s", data)
	}

	// -safe -out then -verify -breaches on the file: the audit mode works on
	// previously published artifacts too.
	pub := filepath.Join(dir, "safe.json")
	if err := run(runConfig{in: in, out: pub, k: 2, m: 2, parallel: 1, seed: 1, safe: true}); err != nil {
		t.Fatalf("safe publish: %v", err)
	}
	auditOut := filepath.Join(dir, "verify-audit.json")
	if err := run(runConfig{in: in, out: auditOut, k: 2, m: 2, parallel: 1, seed: 1, verify: pub, breaches: true}); err != nil {
		t.Fatalf("audit of persisted safe publication: %v", err)
	}
	if data, _ = os.ReadFile(auditOut); !strings.Contains(string(data), `"breachedClusters": 0`) {
		t.Errorf("verify-mode audit report: %s", data)
	}
}

func TestRunStream(t *testing.T) {
	dir := t.TempDir()
	in := writeInput(t, dir, toyData)

	// Binary stream output must equal the in-memory binary output.
	streamOut := filepath.Join(dir, "stream.bin")
	if err := run(runConfig{in: in, out: streamOut, k: 3, m: 2, parallel: 1, seed: 1,
		stream: true, binaryOut: true, memBudget: "1K", tmpDir: dir}); err != nil {
		t.Fatalf("stream: %v", err)
	}
	memOut := filepath.Join(dir, "mem.bin")
	if err := run(runConfig{in: in, out: memOut, k: 3, m: 2, parallel: 1, seed: 1, binaryOut: true}); err != nil {
		t.Fatalf("in-memory: %v", err)
	}
	got, _ := os.ReadFile(streamOut)
	want, _ := os.ReadFile(memOut)
	if !strings.HasPrefix(string(got), "DSA1") {
		t.Errorf("stream output missing magic: %q", got[:min(len(got), 4)])
	}
	if string(got) != string(want) {
		t.Error("-stream binary output differs from in-memory output")
	}

	// JSON stream output re-verifies against the original.
	jsonOut := filepath.Join(dir, "stream.json")
	if err := run(runConfig{in: in, out: jsonOut, k: 3, m: 2, parallel: 1, seed: 1,
		stream: true, memBudget: "64M"}); err != nil {
		t.Fatalf("stream json: %v", err)
	}
	verifyOut := filepath.Join(dir, "verify.txt")
	if err := run(runConfig{in: in, out: verifyOut, k: 3, m: 2, parallel: 1, seed: 1, verify: jsonOut}); err != nil {
		t.Fatalf("verify streamed json: %v", err)
	}
	if msg, _ := os.ReadFile(verifyOut); !strings.Contains(string(msg), "OK") {
		t.Errorf("streamed publication failed verification: %s", msg)
	}
}

func TestRunStreamFlagConflicts(t *testing.T) {
	dir := t.TempDir()
	in := writeInput(t, dir, toyData)
	if err := run(runConfig{in: in, k: 3, m: 2, stream: true, stats: true}); err == nil {
		t.Error("-stream -stats accepted")
	}
	if err := run(runConfig{in: in, k: 3, m: 2, stream: true, breaches: true}); err == nil {
		t.Error("-stream -breaches accepted")
	}
	if err := run(runConfig{in: in, k: 3, m: 2, stream: true, memBudget: "lots"}); err == nil {
		t.Error("bad -mem-budget accepted")
	}
}

func TestParseBytes(t *testing.T) {
	cases := map[string]int64{
		"": 0, "123": 123, "1K": 1 << 10, "2M": 2 << 20, "3G": 3 << 30,
		"512MiB": 512 << 20, "64kb": 64 << 10, " 7 ": 7,
		"1KiB": 1 << 10, "1kib": 1 << 10, "2mb": 2 << 20, "2gib": 2 << 30,
		"0K": 0, "9007199254740992": 1 << 53,
		"9223372036854775807": math.MaxInt64, // max without a suffix is fine
		"8796093022207K":      8796093022207 << 10,
	}
	for s, want := range cases {
		got, err := parseBytes(s)
		if err != nil || got != want {
			t.Errorf("parseBytes(%q) = %d, %v; want %d", s, got, err, want)
		}
	}
	bad := []string{
		"x", "12Q", "--3", "-512M", "-1", "K", "1.5M", "0x10K",
		// Overflow: v * mult wraps int64 — used to be returned as a huge
		// negative budget without error.
		"9223372036854775807K", "9223372036854775807M", "9223372036854775807G",
		"9007199254740992G", "8796093022208M",
		// Past int64 before the suffix even applies.
		"9223372036854775808", "99999999999999999999K",
	}
	for _, s := range bad {
		if got, err := parseBytes(s); err == nil {
			t.Errorf("parseBytes(%q) accepted, returned %d", s, got)
		}
	}
}

// failAfter errors on the first write once limit bytes have been accepted —
// a stand-in for a broken pipe or full disk mid-output.
type failAfter struct {
	limit   int
	written bytes.Buffer
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.written.Len()+len(p) > f.limit {
		return 0, errors.New("disk full")
	}
	return f.written.Write(p)
}

func TestWriteReconstructionsFraming(t *testing.T) {
	datasets := disasso.ReconstructMany(mustAnonymize(t), 3, 1)
	var out bytes.Buffer
	if err := writeReconstructions(&out, datasets, nil); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	parts := strings.Split(text, "%%\n")
	if len(parts) != 3 {
		t.Fatalf("output has %d %%%%-framed datasets, want 3:\n%s", len(parts), text)
	}
	for i, part := range parts {
		lines := strings.Split(strings.TrimSpace(part), "\n")
		if len(lines) != 10 {
			t.Errorf("dataset %d has %d records, want 10", i, len(lines))
		}
	}
	if strings.HasSuffix(text, "%%\n") {
		t.Error("trailing separator after the last dataset")
	}
}

func TestWriteReconstructionsPropagatesWriteErrors(t *testing.T) {
	datasets := disasso.ReconstructMany(mustAnonymize(t), 4, 1)
	var full bytes.Buffer
	if err := writeReconstructions(&full, datasets, nil); err != nil {
		t.Fatal(err)
	}
	// Break the writer at every prefix length: each must surface the error.
	for limit := 0; limit < full.Len(); limit += 7 {
		w := &failAfter{limit: limit}
		if err := writeReconstructions(w, datasets, nil); err == nil {
			t.Fatalf("write failure after %d bytes not propagated", limit)
		}
	}
}

// mustAnonymize publishes the toy dataset for reconstruction tests.
func mustAnonymize(t *testing.T) *disasso.Anonymized {
	t.Helper()
	d, err := disasso.ReadIDs(strings.NewReader(toyData))
	if err != nil {
		t.Fatal(err)
	}
	a, err := disasso.Anonymize(d, disasso.Options{K: 3, M: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return a
}
