module disasso

go 1.24
